// Pause-cascade attribution: origins vs propagated pauses, and the §4
// claim that threshold policies shrink cascade depth.
#include <gtest/gtest.h>

#include "dcdl/mitigation/thresholds.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/stats/cascade.hpp"
#include "dcdl/topo/generators.hpp"

namespace dcdl::stats {
namespace {

using namespace dcdl::literals;
using namespace dcdl::scenarios;
using namespace dcdl::topo;

TEST(Cascade, SingleBottleneckPausesAreAllOrigins) {
  // One congested switch pausing its hosts: no switch-to-switch
  // propagation, every pause is depth 0.
  Scenario s = make_incast(IncastParams{});
  PauseEventLog log(*s.net);
  s.sim->run_until(5_ms);
  const CascadeStats stats = analyze_pause_cascade(*s.net, log);
  ASSERT_GT(stats.total_pauses, 0u);
  // The receiving leaf pauses the spines, which pause the sending leaves,
  // which pause the hosts: depth reaches 2 in a 2-tier fabric but no more.
  EXPECT_LE(stats.max_depth, 2);
}

TEST(Cascade, DeadlockCycleShowsDeepPropagation) {
  FourSwitchParams p;
  p.with_flow3 = true;
  Scenario s = make_four_switch(p);
  PauseEventLog log(*s.net);
  s.sim->run_until(20_ms);
  const CascadeStats stats = analyze_pause_cascade(*s.net, log);
  EXPECT_GE(stats.max_depth, 2)
      << "the pause chain must propagate around the ring";
  EXPECT_GT(stats.mean_depth, 0.0);
}

TEST(Cascade, CountsSumToTotal) {
  Scenario s = make_four_switch(FourSwitchParams{});
  PauseEventLog log(*s.net);
  s.sim->run_until(10_ms);
  const CascadeStats stats = analyze_pause_cascade(*s.net, log);
  std::uint64_t sum = 0;
  for (const auto c : stats.count_by_depth) sum += c;
  EXPECT_EQ(sum, stats.total_pauses);
}

// ---------------------------------------------------------------------------
// Hand-built attribution cases: drive the pfc_state hook directly so every
// depth assignment is pinned to a known event order, independent of any
// scenario's traffic pattern.

/// A 3-switch chain s0 — s1 — s2 with no hosts; pause events are injected
/// by hand through the trace hook.
struct Chain {
  Simulator sim;
  Topology topo;
  NodeId s0, s1, s2;
  std::unique_ptr<Network> net;
  std::unique_ptr<PauseEventLog> log;

  Chain() {
    s0 = topo.add_switch("s0");
    s1 = topo.add_switch("s1");
    s2 = topo.add_switch("s2");
    topo.add_link(s0, s1);
    topo.add_link(s1, s2);
    net = std::make_unique<Network>(sim, topo, NetConfig{});
    log = std::make_unique<PauseEventLog>(*net);
  }

  /// The ingress queue on `at` facing `from` — the identity that pauses
  /// the link from->at.
  QueueKey queue(NodeId at, NodeId from, ClassId cls = 0) const {
    return QueueKey{at, *topo.port_towards(at, from), cls};
  }

  void fire(int t_us, QueueKey q, bool paused) {
    net->trace().pfc_state(Time{t_us * 1'000'000}, q.node, q.port, q.cls,
                           paused);
  }
};

TEST(Cascade, ChainAttributesOriginAndPropagatedDepths) {
  // Congestion starts at s2's ingress from s1 (depth 0), backpressure
  // reaches s1's ingress from s0 (depth 1), then s0's ingress queue fires
  // while s1 still holds it (depth 2).
  Chain c;
  c.fire(1, c.queue(c.s2, c.s1), true);   // origin
  c.fire(2, c.queue(c.s1, c.s0), true);   // parent: s2's active pause
  c.fire(3, c.queue(c.s0, c.s1), true);   // parent: s1's active pause
  const CascadeStats stats = analyze_pause_cascade(*c.net, *c.log);
  EXPECT_EQ(stats.total_pauses, 3u);
  ASSERT_EQ(stats.count_by_depth.size(), 3u);
  EXPECT_EQ(stats.count_by_depth[0], 1u);
  EXPECT_EQ(stats.count_by_depth[1], 1u);
  EXPECT_EQ(stats.count_by_depth[2], 1u);
  EXPECT_EQ(stats.max_depth, 2);
  EXPECT_DOUBLE_EQ(stats.mean_depth, 1.0);
}

TEST(Cascade, XonResetsAttribution) {
  // Once the origin releases (Xon), a fresh pause at the same queue is an
  // origin again — attribution follows *active* pauses, not history.
  Chain c;
  c.fire(1, c.queue(c.s2, c.s1), true);
  c.fire(2, c.queue(c.s2, c.s1), false);  // released
  c.fire(3, c.queue(c.s1, c.s0), true);   // no active parent anywhere
  const CascadeStats stats = analyze_pause_cascade(*c.net, *c.log);
  EXPECT_EQ(stats.total_pauses, 2u);
  EXPECT_EQ(stats.max_depth, 0);
  EXPECT_EQ(stats.count_by_depth[0], 2u);
}

TEST(Cascade, SimultaneousParentsTakeMaxDepthPlusOne) {
  // s1 sits between two active parents of different depths: s2's origin
  // (depth 0) and s0's chained pause (depth 2). The middle queue must take
  // max(parent depths) + 1, not min or sum.
  Chain c;
  c.fire(1, c.queue(c.s2, c.s1), true);   // depth 0 origin on the right
  c.fire(2, c.queue(c.s1, c.s0), true);   // depth 1 (parent: s2)
  c.fire(3, c.queue(c.s0, c.s1), true);   // depth 2 (parent: s1's queue)
  c.fire(4, c.queue(c.s1, c.s2), true);   // parents: s0 (depth 2) AND
                                          // s2 (depth 0) -> 3
  const CascadeStats stats = analyze_pause_cascade(*c.net, *c.log);
  EXPECT_EQ(stats.total_pauses, 4u);
  EXPECT_EQ(stats.max_depth, 3);
  ASSERT_EQ(stats.count_by_depth.size(), 4u);
  EXPECT_EQ(stats.count_by_depth[3], 1u);
}

TEST(Cascade, ClassesDoNotCrossAttribute) {
  // An active pause on class 1 is not a parent for a class-0 assertion:
  // PFC is per-class, and so is the cascade.
  Chain c;
  c.fire(1, c.queue(c.s2, c.s1, 1), true);
  c.fire(2, c.queue(c.s1, c.s0, 0), true);
  const CascadeStats stats = analyze_pause_cascade(*c.net, *c.log);
  EXPECT_EQ(stats.total_pauses, 2u);
  EXPECT_EQ(stats.max_depth, 0) << "class 1 pause must not parent class 0";
}

TEST(Cascade, BurstAbsorbingThresholdsShrinkTheCascade) {
  // §4: larger upstream thresholds absorb bursts instead of propagating
  // pauses. Mean cascade depth must drop under the tiered policy.
  double depth_uniform = 0, depth_tiered = 0;
  for (const bool tiered : {false, true}) {
    Simulator sim;
    const LeafSpineTopo ls = make_leaf_spine(3, 2, 4);
    Topology topo = ls.topo;
    Network net(sim, topo, NetConfig{});
    routing::install_shortest_paths(net);
    if (tiered) {
      mitigation::apply_tier_thresholds(
          net, {8 * 1024, 8 * 1024, 160 * 1024}, 2000);
    } else {
      mitigation::apply_tier_thresholds(
          net, {8 * 1024, 8 * 1024, 8 * 1024}, 2000);
    }
    int made = 0;
    for (int leaf = 1; leaf < 3; ++leaf) {
      for (int h = 0; h < 3; ++h) {
        FlowSpec f;
        f.id = static_cast<FlowId>(++made);
        f.src_host = ls.hosts[static_cast<std::size_t>(leaf)]
                             [static_cast<std::size_t>(h)];
        f.dst_host = ls.hosts[0][0];
        f.packet_bytes = 1000;
        net.host_at(f.src_host).add_flow(
            f, std::make_unique<OnOffPacer>(10_us, 50_us, 31 * made, true));
      }
    }
    PauseEventLog log(net);
    sim.run_until(10_ms);
    const CascadeStats stats = analyze_pause_cascade(net, log);
    (tiered ? depth_tiered : depth_uniform) = stats.mean_depth;
  }
  EXPECT_LT(depth_tiered, depth_uniform);
}

}  // namespace
}  // namespace dcdl::stats
