// PFC priority-class isolation: pause and deadlock are per-class, so a
// deadlocked lossless class must not stall traffic of another class on
// the same wires — the property all the paper's class-based mitigations
// (TTL bands, buffer pools, per-class thresholds) build on.
#include <gtest/gtest.h>

#include "dcdl/analysis/deadlock.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/routing/compute.hpp"

namespace dcdl {
namespace {

using namespace dcdl::literals;

struct TwoClassFig4 {
  Simulator sim;
  Topology topo;
  std::unique_ptr<Network> net;
  NodeId hA, hB, hC, hD, hB3, hC3;

  TwoClassFig4() {
    const NodeId A = topo.add_switch("A"), B = topo.add_switch("B");
    const NodeId C = topo.add_switch("C"), D = topo.add_switch("D");
    for (const auto [x, y] : {std::pair{A, B}, {B, C}, {C, D}, {D, A}}) {
      topo.add_link(x, y, Rate::gbps(40), 2_us);
    }
    hA = topo.add_host("hA");
    hB = topo.add_host("hB");
    hC = topo.add_host("hC");
    hD = topo.add_host("hD");
    hB3 = topo.add_host("hB3");
    hC3 = topo.add_host("hC3");
    const NodeId A2 = A, B2 = B, C2 = C, D2 = D;
    for (const auto [sw, h] : {std::pair{A2, hA}, {B2, hB}, {C2, hC},
                               {D2, hD}, {B2, hB3}, {C2, hC3}}) {
      topo.add_link(sw, h, Rate::gbps(40), 2_us);
    }
    NetConfig cfg;
    cfg.num_classes = 2;
    cfg.tx_jitter = Time{10'000};
    net = std::make_unique<Network>(sim, topo, cfg);
    // The Figure-4 deadlock set in class 0.
    routing::install_flow_path(*net, 1, {hA, A, B, C, D, hD});
    routing::install_flow_path(*net, 2, {hC, C, D, A, B, hB});
    routing::install_flow_path(*net, 3, {hB3, B, C, hC3});
    int i = 0;
    for (const auto [src, dst] :
         {std::pair{hA, hD}, {hC, hB}, {hB3, hC3}}) {
      FlowSpec f;
      f.id = static_cast<FlowId>(++i);
      f.src_host = src;
      f.dst_host = dst;
      f.packet_bytes = 1000;
      f.ttl = 64;
      f.prio = 0;
      net->host_at(src).add_flow(f);
    }
    // An innocent class-1 flow crossing the deadlocked ring A->B->C->D.
    FlowSpec g;
    g.id = 9;
    g.src_host = hA;
    g.dst_host = hD;
    g.packet_bytes = 1000;
    g.ttl = 64;
    g.prio = 1;
    routing::install_flow_path(*net, 9, {hA, A, B, C, D, hD});
    net->host_at(hA).add_flow(
        g, std::make_unique<TokenBucketPacer>(Rate::gbps(5), 1000));
  }
};

TEST(ClassIsolation, Class1SurvivesAClass0Deadlock) {
  TwoClassFig4 fx;
  fx.sim.run_until(20_ms);
  // Class 0 is deadlocked...
  const auto snap = analysis::snapshot_wait_for(*fx.net);
  ASSERT_TRUE(snap.has_cycle);
  for (const auto& q : snap.cycle) EXPECT_EQ(q.cls, 0);
  // ...while the class-1 flow keeps its full paced rate across the very
  // same wires.
  const double gbps =
      static_cast<double>(fx.net->host_at(fx.hD).delivered_bytes(9)) * 8 /
      20e-3 / 1e9;
  EXPECT_NEAR(gbps, 5.0, 0.3);
}

TEST(ClassIsolation, Class1DeliveryContinuesAfterClass0Froze) {
  TwoClassFig4 fx;
  fx.sim.run_until(10_ms);
  const auto at10_c0 = fx.net->host_at(fx.hD).delivered_bytes(1);
  const auto at10_c1 = fx.net->host_at(fx.hD).delivered_bytes(9);
  fx.sim.run_until(20_ms);
  EXPECT_EQ(fx.net->host_at(fx.hD).delivered_bytes(1), at10_c0)
      << "class 0 is frozen";
  EXPECT_GT(fx.net->host_at(fx.hD).delivered_bytes(9), at10_c1 + 5'000'000)
      << "class 1 keeps flowing";
}

TEST(ClassIsolation, PausesAreConfinedToClass0) {
  TwoClassFig4 fx;
  bool class1_paused = false;
  fx.net->trace().pfc_state = [&](Time, NodeId, PortId, ClassId cls, bool) {
    if (cls == 1) class1_paused = true;
  };
  fx.sim.run_until(20_ms);
  EXPECT_FALSE(class1_paused) << "a 5 Gbps paced flow never crosses Xoff";
}

}  // namespace
}  // namespace dcdl
