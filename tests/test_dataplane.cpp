// The in-switch DCFIT detection/recovery pipeline (src/dcdl/dataplane):
// tag algebra and state machine, in-band detection at the true
// initial-trigger switch (cross-checked against the offline forensics
// attribution), all three recovery policies restoring forwarding, zero
// false positives on self-resolving transients, and byte-identical
// results across shard counts with recovery active.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "dcdl/analysis/deadlock.hpp"
#include "dcdl/dataplane/dataplane.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/forensics/forensics.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/sim/sharded.hpp"
#include "dcdl/stats/pause_log.hpp"

namespace dcdl::dataplane {
namespace {

using namespace dcdl::literals;
using scenarios::RunSummary;
using scenarios::Scenario;

// ------------------------------------------------------------- pipeline

TEST(DataplanePipeline, PolicyParsingRoundTrips) {
  RecoveryPolicy p = RecoveryPolicy::kOff;
  for (const char* name : {"off", "detect", "drop", "reroute", "pfc_lift"}) {
    ASSERT_TRUE(parse_policy(name, &p)) << name;
    EXPECT_STREQ(to_string(p), name);
  }
  EXPECT_TRUE(parse_policy("lift", &p));  // alias
  EXPECT_EQ(p, RecoveryPolicy::kPfcLift);
  p = RecoveryPolicy::kDrop;
  EXPECT_FALSE(parse_policy("bogus", &p));
  EXPECT_EQ(p, RecoveryPolicy::kDrop) << "failed parse left output untouched";
}

TEST(DataplanePipeline, TagAlgebraOriginateThenPropagate) {
  DataplaneConfig cfg;
  cfg.policy = RecoveryPolicy::kDetect;
  Pipeline a(cfg, /*self=*/3, /*ports=*/2, /*classes=*/1);
  Pipeline b(cfg, /*self=*/7, /*ports=*/2, /*classes=*/1);

  const PauseTag t0 = a.originate(1, 0);
  EXPECT_TRUE(t0.valid());
  EXPECT_TRUE(a.is_own(t0));
  EXPECT_FALSE(b.is_own(t0));
  EXPECT_EQ(t0.origin, 3u);
  EXPECT_EQ(t0.origin_port, 1u);
  EXPECT_EQ(t0.hops, 0);
  EXPECT_EQ(t0.visited, visit_bit(3));

  const PauseTag t1 = b.propagate(t0);
  EXPECT_EQ(t1.origin, 3u) << "propagation preserves the origin";
  EXPECT_EQ(t1.hops, 1);
  EXPECT_EQ(t1.seq, t0.seq) << "propagation preserves the epoch";
  EXPECT_EQ(t1.visited, visit_bit(3) | visit_bit(7));
  EXPECT_NE(a.originate(1, 0), t0)
      << "re-origination is a fresh epoch (stale loop guards must not "
         "swallow a re-formed wedge's circulation)";
  EXPECT_EQ(a.stats().tags_originated, 2u);
  EXPECT_EQ(b.stats().tags_propagated, 1u);

  EXPECT_FALSE(PauseTag{}.valid());
}

TEST(DataplanePipeline, RememberSentIsTheRePropagationLoopGuard) {
  DataplaneConfig cfg;
  cfg.policy = RecoveryPolicy::kDetect;
  Pipeline p(cfg, 1, 4, 2);
  const PauseTag t = p.originate(0, 1);
  EXPECT_TRUE(p.remember_sent(2, 1, t));
  EXPECT_FALSE(p.remember_sent(2, 1, t)) << "identical tag: do not re-send";
  PauseTag grown = p.propagate(t);
  EXPECT_TRUE(p.remember_sent(2, 1, grown)) << "changed tag sends again";
  p.clear_sent(2, 1);
  EXPECT_TRUE(p.remember_sent(2, 1, grown)) << "Xon clears the guard";
}

TEST(DataplanePipeline, CandidateLifecycleConfirmFalseAlarmAndRearm) {
  DataplaneConfig cfg;
  cfg.policy = RecoveryPolicy::kDrop;
  Pipeline p(cfg, 5, 2, 1);
  const PauseTag own = p.originate(0, 0);
  using Verdict = Pipeline::Verdict;

  ASSERT_TRUE(p.arm_candidate(own, /*origin_departures=*/10, Time{1000}));
  EXPECT_TRUE(p.candidate_pending());
  EXPECT_FALSE(p.arm_candidate(own, 10, Time{1001})) << "already dwelling";
  // Departures moved during the dwell: still draining, so the dwell renews
  // (the cycle may harden later with no new pause edge to re-arm it).
  EXPECT_EQ(p.resolve_candidate(/*still_asserted=*/true, 12),
            Verdict::kRetry);
  EXPECT_TRUE(p.candidate_pending());
  EXPECT_EQ(p.stats().false_alarms, 0u);
  // Frozen across a full dwell: confirmed.
  EXPECT_EQ(p.resolve_candidate(true, 12), Verdict::kConfirmed);
  EXPECT_EQ(p.stats().confirms, 1u);
  EXPECT_FALSE(p.candidate_pending());

  // A candidate whose origin counter resumes is a false alarm.
  ASSERT_TRUE(p.arm_candidate(own, 12, Time{2000}));
  EXPECT_EQ(p.resolve_candidate(/*still_asserted=*/false, 12),
            Verdict::kFalseAlarm);
  EXPECT_EQ(p.stats().false_alarms, 1u);
  EXPECT_FALSE(p.candidate_pending());

  p.note_recovery();
  EXPECT_FALSE(p.armed());
  EXPECT_FALSE(p.arm_candidate(own, 12, Time{3000})) << "disarmed in cooldown";
  p.rearm();
  EXPECT_TRUE(p.armed());
  EXPECT_TRUE(p.arm_candidate(own, 12, Time{4000}));
}

// ------------------------------------------------ zero cost when disabled

TEST(DataplaneSwitchIntegration, PipelineAbsentWhenPolicyOff) {
  // The golden-trace digests pin this: with the default (off) config no
  // pipeline is allocated, packets are never stamped, and the PFC path is
  // the untagged one.
  Scenario s = scenarios::make_routing_loop(scenarios::RoutingLoopParams{});
  for (const NodeId sw : s.topo->switches()) {
    EXPECT_EQ(s.net->switch_at(sw).pipeline(), nullptr);
  }
}

TEST(DataplaneSwitchIntegration, PacketsAreStampedAtFabricEntry) {
  scenarios::RoutingLoopParams p;
  p.inject = Rate::gbps(4);  // below the Eq. 3 boundary: loops but drains
  p.dataplane.policy = RecoveryPolicy::kDetect;
  Scenario s = scenarios::make_routing_loop(p);
  s.sim->run_until(2_ms);
  std::uint64_t tagged = 0, loops = 0;
  for (const NodeId sw : s.topo->switches()) {
    const Pipeline* pl = s.net->switch_at(sw).pipeline();
    ASSERT_NE(pl, nullptr);
    tagged += pl->stats().packets_tagged;
    loops += pl->stats().packet_loops;
  }
  EXPECT_GT(tagged, 0u) << "every packet is stamped once at fabric entry";
  EXPECT_GT(loops, 0u) << "looping packets revisit their entry switch";
}

// ----------------------------------------------------- in-band detection

/// Offline attribution: the node of the forensic initial-trigger span.
std::optional<NodeId> forensic_trigger(const Scenario& s,
                                       const stats::PauseEventLog& pauses,
                                       const RunSummary& r) {
  forensics::CausalInput in =
      forensics::input_from_pause_log(*s.topo, pauses, s.sim->now());
  in.deadlock_cycle = r.cycle;
  if (r.detected_at) in.deadlock_at_ps = r.detected_at->ps();
  const forensics::CascadeReport report = forensics::analyze(in);
  if (!report.initial_trigger()) return std::nullopt;
  return report.spans[*report.initial_trigger()].queue.node;
}

TEST(DataplaneDetection, RoutingLoopDetectsAtTheForensicTriggerSwitch) {
  scenarios::RoutingLoopParams p;  // inject 6 > boundary 5: deadlocks
  p.dataplane.policy = RecoveryPolicy::kDetect;
  Scenario s = scenarios::make_routing_loop(p);
  stats::PauseEventLog pauses(*s.net);
  const RunSummary r = scenarios::run_and_check(s, 10_ms, 10_ms);

  EXPECT_TRUE(r.deadlocked) << "detect-only policy never intervenes";
  ASSERT_TRUE(r.dp_detected_at.has_value());
  ASSERT_TRUE(r.dp_trigger.has_value());
  EXPECT_GE(r.dp_confirms, 1u);
  EXPECT_EQ(r.dp_recoveries, 0u);
  // In-band detection beats the centralized monitor (50 us poll + 1 ms
  // dwell) to the verdict.
  ASSERT_TRUE(r.detected_at.has_value());
  EXPECT_LT(*r.dp_detected_at, *r.detected_at);

  const std::optional<NodeId> offline = forensic_trigger(s, pauses, r);
  ASSERT_TRUE(offline.has_value());
  EXPECT_EQ(*r.dp_trigger, *offline)
      << "in-band trigger attribution disagrees with offline forensics";
}

TEST(DataplaneDetection, ValleyCascadeDetectsAtTheForensicTriggerSwitch) {
  scenarios::ValleyViolationParams p;  // tree-fabric congestion cascade
  p.dataplane.policy = RecoveryPolicy::kDetect;
  Scenario s = scenarios::make_valley_violation(p);
  stats::PauseEventLog pauses(*s.net);
  const RunSummary r = scenarios::run_and_check(s, 20_ms, 10_ms);

  EXPECT_TRUE(r.deadlocked);
  ASSERT_TRUE(r.dp_detected_at.has_value());
  ASSERT_TRUE(r.dp_trigger.has_value());

  const std::optional<NodeId> offline = forensic_trigger(s, pauses, r);
  ASSERT_TRUE(offline.has_value());
  EXPECT_EQ(*r.dp_trigger, *offline);
}

TEST(DataplaneDetection, TransientLoopBelowBoundaryZeroFalsePositives) {
  // §1's transient loop at 4 Gbps — below the Eq. 3 boundary, so the loop
  // drains by itself after the routes are repaired. The pipeline may arm
  // candidates, but the confirm dwell must reject every one.
  scenarios::TransientLoopParams p;
  p.inject = Rate::gbps(4);
  p.dataplane.policy = RecoveryPolicy::kReroute;
  Scenario s = scenarios::make_transient_loop(p);
  const RunSummary r = scenarios::run_and_check(s, 10_ms, 20_ms);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_EQ(r.dp_confirms, 0u) << "self-resolving transient misclassified";
  EXPECT_EQ(r.dp_recoveries, 0u);
}

// ----------------------------------------------------- recovery policies

std::int64_t valley_delivered(RecoveryPolicy policy, RunSummary* out) {
  scenarios::ValleyViolationParams p;
  p.dataplane.policy = policy;
  Scenario s = scenarios::make_valley_violation(p);
  *out = scenarios::run_and_check(s, 20_ms, 10_ms);
  std::int64_t total = 0;
  for (const auto& [flow, bytes] : out->delivered) total += bytes;
  return total;
}

void expect_recovers(RecoveryPolicy policy) {
  // Baseline: detect-only leaves the wedge in place, so its delivered
  // total is exactly what the fabric moved before freezing. A recovery
  // policy must beat it — that surplus is post-recovery forwarding.
  RunSummary base;
  const std::int64_t wedged = valley_delivered(RecoveryPolicy::kDetect,
                                               &base);
  ASSERT_TRUE(base.deadlocked);

  RunSummary r;
  const std::int64_t total = valley_delivered(policy, &r);
  EXPECT_FALSE(r.deadlocked)
      << to_string(policy) << " left the fabric wedged";
  ASSERT_TRUE(r.dp_detected_at.has_value());
  ASSERT_TRUE(r.dp_recovered_at.has_value());
  EXPECT_GE(*r.dp_recovered_at, *r.dp_detected_at);
  EXPECT_GE(r.dp_recoveries, 1u);
  EXPECT_GT(total, wedged) << "post-recovery throughput missing";
}

TEST(DataplaneRecovery, DropPolicyRestoresForwarding) {
  expect_recovers(RecoveryPolicy::kDrop);
}

TEST(DataplaneRecovery, ReroutePolicyRestoresForwarding) {
  expect_recovers(RecoveryPolicy::kReroute);
}

TEST(DataplaneRecovery, PfcLiftPolicyRestoresForwarding) {
  expect_recovers(RecoveryPolicy::kPfcLift);
}

// ------------------------------------------------- centralized monitor

TEST(DataplaneMonitor, RearmConfirmsASecondDeadlockWithoutDoubleFiring) {
  // Valley deadlock with no recovery: after rearm() the same persistent
  // cycle must be confirmed a second time, firing on_confirmed exactly
  // once per confirmation.
  Scenario s = scenarios::make_valley_violation(
      scenarios::ValleyViolationParams{});
  analysis::DeadlockMonitor m(*s.net, Time{50'000'000}, 1_ms);
  int fired = 0;
  m.set_on_confirmed([&fired](const analysis::DeadlockMonitor&) { ++fired; });
  m.start(Time::zero(), 60_ms);
  s.sim->run_until(20_ms);
  ASSERT_TRUE(m.deadlocked());
  ASSERT_EQ(fired, 1);
  EXPECT_EQ(m.confirmations(), 1u);
  const Time first = *m.detected_at();

  m.rearm();
  EXPECT_FALSE(m.deadlocked());
  EXPECT_TRUE(m.cycle().empty());
  EXPECT_TRUE(m.detected_at().has_value()) << "history survives rearm";
  m.rearm();  // idempotent: no double-scheduled poll chain

  s.sim->run_until(40_ms);
  EXPECT_TRUE(m.deadlocked()) << "the untreated cycle is still there";
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(m.confirmations(), 2u);
  EXPECT_GT(*m.detected_at(), first);
}

// ------------------------------------------------------ shard invariance

std::string summary_digest(const RunSummary& r) {
  std::string out = r.deadlocked ? "dead;" : "ok;";
  out += std::to_string(r.trapped_bytes) + ";";
  out += (r.detected_at ? std::to_string(r.detected_at->ps()) : "-") + ";";
  out += (r.dp_detected_at ? std::to_string(r.dp_detected_at->ps()) : "-");
  out += ";";
  out += (r.dp_trigger ? std::to_string(*r.dp_trigger) : "-") + ";";
  out += (r.dp_recovered_at ? std::to_string(r.dp_recovered_at->ps()) : "-");
  out += ";";
  out += std::to_string(r.dp_candidates) + ";";
  out += std::to_string(r.dp_confirms) + ";";
  out += std::to_string(r.dp_recoveries) + ";";
  out += std::to_string(r.dp_false_alarms) + ";";
  for (const auto& [flow, bytes] : r.delivered) {
    out += std::to_string(flow) + "=" + std::to_string(bytes) + ";";
  }
  return out;
}

std::string valley_recovery_digest(int shards) {
  scenarios::ValleyViolationParams p;
  p.dataplane.policy = RecoveryPolicy::kReroute;
  std::optional<ScopedShardRequest> req;
  if (shards >= 1) req.emplace(shards);
  Scenario s = scenarios::make_valley_violation(p);
  req.reset();
  const RunSummary r = scenarios::run_and_check(s, 20_ms, 10_ms);
  return summary_digest(r);
}

TEST(DataplaneSharded, RecoveryTimelineIsByteIdenticalAcrossShardCounts) {
  const std::string base = valley_recovery_digest(0);  // legacy engine
  EXPECT_EQ(valley_recovery_digest(1), base);
  EXPECT_EQ(valley_recovery_digest(2), base);
  EXPECT_EQ(valley_recovery_digest(4), base);
}

}  // namespace
}  // namespace dcdl::dataplane
