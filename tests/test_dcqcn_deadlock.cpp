// §4 "Preventing PFC from being generated": end-to-end congestion control
// as a *deadlock* mitigation. With DCQCN + ECN on the Figure-4 topology,
// senders back off before ingress counters reach Xoff, the pause cycle
// never closes, and the deadlock does not form — at the cost of the
// feedback-latency window the paper warns about.
#include <gtest/gtest.h>

#include "dcdl/analysis/deadlock.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/mitigation/dcqcn.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/stats/pause_log.hpp"

namespace dcdl {
namespace {

using namespace dcdl::literals;

// The Figure-4 setup with configurable congestion control.
struct Fig4 {
  Simulator sim;
  Topology topo;
  std::unique_ptr<Network> net;
  NodeId hA, hB, hC, hD, hB3, hC3;

  explicit Fig4(bool dcqcn) {
    const NodeId A = topo.add_switch("A"), B = topo.add_switch("B");
    const NodeId C = topo.add_switch("C"), D = topo.add_switch("D");
    for (const auto [x, y] : {std::pair{A, B}, {B, C}, {C, D}, {D, A}}) {
      topo.add_link(x, y, Rate::gbps(40), 2_us);
    }
    hA = topo.add_host("hA");
    hB = topo.add_host("hB");
    hC = topo.add_host("hC");
    hD = topo.add_host("hD");
    hB3 = topo.add_host("hB3");
    hC3 = topo.add_host("hC3");
    for (const auto [sw, h] : {std::pair{A, hA}, {B, hB}, {C, hC}, {D, hD},
                               {B, hB3}, {C, hC3}}) {
      topo.add_link(sw, h, Rate::gbps(40), 2_us);
    }
    NetConfig cfg;
    cfg.tx_jitter = Time{10'000};
    cfg.ecn.enabled = dcqcn;
    cfg.ecn.mark_threshold_bytes = 20 * 1024;  // below the 40 KB Xoff
    net = std::make_unique<Network>(sim, topo, cfg);
    routing::install_flow_path(*net, 1, {hA, A, B, C, D, hD});
    routing::install_flow_path(*net, 2, {hC, C, D, A, B, hB});
    routing::install_flow_path(*net, 3, {hB3, B, C, hC3});
    int i = 0;
    for (const auto [src, dst] :
         {std::pair{hA, hD}, {hC, hB}, {hB3, hC3}}) {
      FlowSpec f;
      f.id = static_cast<FlowId>(++i);
      f.src_host = src;
      f.dst_host = dst;
      f.packet_bytes = 1000;
      f.ttl = 64;
      f.ecn_capable = dcqcn;
      std::unique_ptr<Pacer> pacer;
      if (dcqcn) {
        pacer = std::make_unique<mitigation::DcqcnPacer>(
            mitigation::DcqcnParams{});
      }
      net->host_at(src).add_flow(f, std::move(pacer));
    }
  }
};

TEST(DcqcnDeadlock, GreedyControlDeadlocks) {
  Fig4 fx(/*dcqcn=*/false);
  fx.sim.run_until(20_ms);
  EXPECT_TRUE(analysis::stop_and_drain(*fx.net, 20_ms).deadlocked);
}

TEST(DcqcnDeadlock, DcqcnPreventsTheDeadlock) {
  Fig4 fx(/*dcqcn=*/true);
  stats::PauseEventLog log(*fx.net);
  fx.sim.run_until(40_ms);
  EXPECT_FALSE(analysis::stop_and_drain(*fx.net, 30_ms).deadlocked);
  // And PFC generation collapses versus the greedy run (where the cycle
  // pauses permanently).
  std::uint64_t pauses = 0;
  for (const auto& e : log.events()) pauses += e.paused ? 1 : 0;
  EXPECT_LT(pauses, 200u);
}

TEST(DcqcnDeadlock, FlowsStillGetUsefulThroughput) {
  Fig4 fx(/*dcqcn=*/true);
  fx.sim.run_until(40_ms);
  for (const auto [flow, dst] : {std::pair{1u, fx.hD}, {2u, fx.hB},
                                 {3u, fx.hC3}}) {
    const double gbps =
        static_cast<double>(fx.net->host_at(dst).delivered_bytes(flow)) * 8 /
        40e-3 / 1e9;
    EXPECT_GT(gbps, 5.0) << "flow " << flow;
  }
}

TEST(DcqcnDeadlock, FeedbackLatencyWindowStillPauses) {
  // The paper's caveat: "due to the feedback latency ... they cannot
  // completely prevent PFC from being generated." The very first pauses
  // land before any CNP can act.
  Fig4 fx(/*dcqcn=*/true);
  stats::PauseEventLog log(*fx.net);
  fx.sim.run_until(2_ms);
  std::uint64_t early_pauses = 0;
  for (const auto& e : log.events()) early_pauses += e.paused ? 1 : 0;
  EXPECT_GT(early_pauses, 0u);
}

}  // namespace
}  // namespace dcdl
