// Runtime deadlock detection: the wait-for/frozen-set snapshot and the
// confirming monitor, validated against the stop-and-drain ground truth.
#include <gtest/gtest.h>

#include "dcdl/analysis/deadlock.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/scenarios/scenario.hpp"

namespace dcdl::analysis {
namespace {

using namespace dcdl::literals;
using namespace dcdl::scenarios;

TEST(Detector, SnapshotEmptyOnIdleNetwork) {
  Scenario s = make_four_switch(FourSwitchParams{});
  const auto snap = snapshot_wait_for(*s.net);
  EXPECT_FALSE(snap.has_cycle);
  EXPECT_TRUE(snap.cycle.empty());
}

TEST(Detector, MonitorConfirmsFourSwitchDeadlock) {
  FourSwitchParams p;
  p.with_flow3 = true;
  Scenario s = make_four_switch(p);
  DeadlockMonitor monitor(*s.net, 50_us, 1_ms);
  monitor.start(Time::zero(), 30_ms);
  s.sim->run_until(30_ms);
  ASSERT_TRUE(monitor.deadlocked());
  ASSERT_TRUE(monitor.detected_at().has_value());
  // The frozen set covers the four ring ingress counters.
  EXPECT_GE(monitor.cycle().size(), 4u);
  // Ground truth agrees.
  EXPECT_TRUE(stop_and_drain(*s.net, 10_ms).deadlocked);
}

TEST(Detector, NoFalsePositiveOnHeavyCongestion) {
  // Figure 3: constant pausing, cyclic dependency present, yet no deadlock.
  Scenario s = make_four_switch(FourSwitchParams{});
  DeadlockMonitor monitor(*s.net, 50_us, 1_ms);
  monitor.start(Time::zero(), 20_ms);
  s.sim->run_until(20_ms);
  EXPECT_FALSE(monitor.deadlocked());
  EXPECT_FALSE(stop_and_drain(*s.net, 10_ms).deadlocked);
}

TEST(Detector, MonitorAndDrainAgreeOnRoutingLoops) {
  for (const double gbps : {2.0, 4.0, 6.0, 9.0}) {
    RoutingLoopParams p;
    p.inject = Rate::gbps(gbps);
    Scenario s = make_routing_loop(p);
    DeadlockMonitor monitor(*s.net, 50_us, 1_ms);
    monitor.start(Time::zero(), 20_ms);
    s.sim->run_until(8_ms);
    const auto drain = stop_and_drain(*s.net, 12_ms);
    EXPECT_EQ(monitor.deadlocked(), drain.deadlocked) << gbps << " Gbps";
  }
}

TEST(Detector, DetectionTimeIsAfterDwell) {
  FourSwitchParams p;
  p.with_flow3 = true;
  Scenario s = make_four_switch(p);
  DeadlockMonitor monitor(*s.net, 50_us, 2_ms);
  monitor.start(Time::zero(), 40_ms);
  s.sim->run_until(40_ms);
  ASSERT_TRUE(monitor.deadlocked());
  EXPECT_GE(monitor.detected_at()->ps(), (2_ms).ps());
}

TEST(Detector, StopAndDrainReportsTrappedBytes) {
  RoutingLoopParams p;
  p.inject = Rate::gbps(9);
  Scenario s = make_routing_loop(p);
  s.sim->run_until(8_ms);
  const auto drain = stop_and_drain(*s.net, 12_ms);
  ASSERT_TRUE(drain.deadlocked);
  EXPECT_GT(drain.trapped_bytes, 2 * 38 * 1024)
      << "both loop counters must be pinned above Xon";
  EXPECT_EQ(drain.trapped_bytes, s.net->total_queued_bytes());
}

TEST(Detector, DrainReleasesEverythingWithoutDeadlock) {
  RoutingLoopParams p;
  p.inject = Rate::gbps(3);
  Scenario s = make_routing_loop(p);
  s.sim->run_until(8_ms);
  const auto drain = stop_and_drain(*s.net, 12_ms);
  EXPECT_FALSE(drain.deadlocked);
  EXPECT_EQ(s.net->total_queued_bytes(), 0);
}

}  // namespace
}  // namespace dcdl::analysis
