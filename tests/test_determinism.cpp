// Reproducibility guarantee: identical seeds replay identically — event
// counts, pause logs, deliveries, and deadlock outcomes all match bit for
// bit. Different seeds genuinely differ in the stochastic regime.
#include <gtest/gtest.h>

#include "dcdl/device/host.hpp"
#include "dcdl/analysis/bdg.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/stats/pause_log.hpp"

namespace dcdl::scenarios {
namespace {

using namespace dcdl::literals;

struct Trace {
  std::vector<stats::PauseEvent> pauses;
  std::vector<std::pair<FlowId, std::int64_t>> delivered;
  std::uint64_t events;
  std::int64_t queued;
};

Trace run_fig4(std::uint64_t seed) {
  FourSwitchParams p;
  p.with_flow3 = true;
  p.seed = seed;
  Scenario s = make_four_switch(p);
  stats::PauseEventLog log(*s.net);
  s.sim->run_until(5_ms);
  Trace t;
  t.pauses = log.events();
  for (const FlowSpec& f : s.flows) {
    t.delivered.emplace_back(f.id,
                             s.net->host_at(f.dst_host).delivered_bytes(f.id));
  }
  t.events = s.sim->events_executed();
  t.queued = s.net->total_queued_bytes();
  return t;
}

TEST(Determinism, SameSeedReplaysExactly) {
  const Trace a = run_fig4(42);
  const Trace b = run_fig4(42);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.queued, b.queued);
  EXPECT_EQ(a.delivered, b.delivered);
  ASSERT_EQ(a.pauses.size(), b.pauses.size());
  for (std::size_t i = 0; i < a.pauses.size(); ++i) {
    EXPECT_EQ(a.pauses[i].t, b.pauses[i].t) << i;
    EXPECT_EQ(a.pauses[i].node, b.pauses[i].node) << i;
    EXPECT_EQ(a.pauses[i].port, b.pauses[i].port) << i;
    EXPECT_EQ(a.pauses[i].paused, b.pauses[i].paused) << i;
  }
}

TEST(Determinism, DifferentSeedsDiverge) {
  const Trace a = run_fig4(1);
  const Trace b = run_fig4(2);
  // The jittered schedules must differ somewhere observable.
  EXPECT_TRUE(a.events != b.events || a.delivered != b.delivered ||
              a.pauses.size() != b.pauses.size());
}

TEST(Determinism, AnalysisIsPure) {
  // Building BDGs and risk reports twice must not perturb the network.
  FourSwitchParams p;
  p.with_flow3 = true;
  Scenario s = make_four_switch(p);
  const auto bdg1 = analysis::BufferDependencyGraph::build(*s.net, s.flows);
  const auto bdg2 = analysis::BufferDependencyGraph::build(*s.net, s.flows);
  EXPECT_EQ(bdg1.edges(), bdg2.edges());
  EXPECT_EQ(s.sim->events_executed(), 0u);
  EXPECT_EQ(s.net->total_queued_bytes(), 0);
}

}  // namespace
}  // namespace dcdl::scenarios
