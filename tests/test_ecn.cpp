// ECN marking at the switch (real backlog and phantom queue) and the
// receiver-side CNP generation that closes the DCQCN loop.
#include <gtest/gtest.h>

#include "dcdl/device/host.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/routing/compute.hpp"

namespace dcdl {
namespace {

using namespace dcdl::literals;

// Two senders into a 10G bottleneck: the egress backlog builds, so
// real-queue marking fires once past the threshold.
struct EcnFixture {
  Simulator sim;
  Topology topo;
  NodeId s, a, b, dst;
  std::unique_ptr<Network> net;

  explicit EcnFixture(EcnConfig ecn, Time cnp_delay = 5_us) {
    s = topo.add_switch("S");
    a = topo.add_host("a");
    b = topo.add_host("b");
    dst = topo.add_host("dst");
    topo.add_link(s, a, Rate::gbps(40), 1_us);
    topo.add_link(s, b, Rate::gbps(40), 1_us);
    topo.add_link(s, dst, Rate::gbps(10), 1_us);
    NetConfig cfg;
    cfg.ecn = ecn;
    cfg.cnp_feedback_delay = cnp_delay;
    net = std::make_unique<Network>(sim, topo, cfg);
    routing::install_shortest_paths(*net);
  }

  void add_flow(FlowId id, NodeId src, bool ecn_capable) {
    FlowSpec f;
    f.id = id;
    f.src_host = src;
    f.dst_host = dst;
    f.packet_bytes = 1000;
    f.ecn_capable = ecn_capable;
    net->host_at(src).add_flow(f);
  }
};

TEST(Ecn, RealBacklogMarkingFiresUnderCongestion) {
  EcnConfig ecn;
  ecn.enabled = true;
  ecn.mark_threshold_bytes = 30 * 1024;
  EcnFixture fx(ecn);
  fx.add_flow(1, fx.a, /*ecn_capable=*/true);
  fx.add_flow(2, fx.b, /*ecn_capable=*/true);
  int marked = 0, unmarked = 0;
  fx.net->trace().delivered = [&](Time, const Packet& pkt) {
    (pkt.ecn_marked ? marked : unmarked)++;
  };
  fx.sim.run_until(2_ms);
  EXPECT_GT(marked, 100);
  EXPECT_GT(unmarked, 0) << "early packets pass before the backlog builds";
}

TEST(Ecn, DisabledMeansNoMarks) {
  EcnFixture fx(EcnConfig{});  // enabled = false
  fx.add_flow(1, fx.a, true);
  fx.add_flow(2, fx.b, true);
  int marked = 0;
  fx.net->trace().delivered = [&](Time, const Packet& pkt) {
    marked += pkt.ecn_marked ? 1 : 0;
  };
  fx.sim.run_until(1_ms);
  EXPECT_EQ(marked, 0);
}

TEST(Ecn, NonCapablePacketsAreNeverMarked) {
  EcnConfig ecn;
  ecn.enabled = true;
  ecn.mark_threshold_bytes = 10 * 1024;
  EcnFixture fx(ecn);
  fx.add_flow(1, fx.a, /*ecn_capable=*/false);
  fx.add_flow(2, fx.b, /*ecn_capable=*/true);
  int marked_f1 = 0, marked_f2 = 0;
  fx.net->trace().delivered = [&](Time, const Packet& pkt) {
    if (!pkt.ecn_marked) return;
    (pkt.flow == 1 ? marked_f1 : marked_f2)++;
  };
  fx.sim.run_until(2_ms);
  EXPECT_EQ(marked_f1, 0);
  EXPECT_GT(marked_f2, 0);
}

TEST(Ecn, PhantomQueueMarksBeforeRealBacklog) {
  // Phantom at 60% of line speed: even a single uncongested 40G flow marks
  // (its rate exceeds the phantom drain), while real-backlog marking would
  // never fire.
  EcnConfig phantom;
  phantom.enabled = true;
  phantom.mark_threshold_bytes = 30 * 1024;
  phantom.phantom_speed_fraction = 0.6;
  Simulator sim;
  Topology topo;
  const NodeId s = topo.add_switch("S");
  const NodeId a = topo.add_host("a");
  const NodeId d = topo.add_host("d");
  topo.add_link(s, a, Rate::gbps(40), 1_us);
  topo.add_link(s, d, Rate::gbps(40), 1_us);
  NetConfig cfg;
  cfg.ecn = phantom;
  Network net(sim, topo, cfg);
  routing::install_shortest_paths(net);
  FlowSpec f;
  f.id = 1;
  f.src_host = a;
  f.dst_host = d;
  f.ecn_capable = true;
  f.packet_bytes = 1000;
  net.host_at(a).add_flow(f);
  int marked = 0;
  net.trace().delivered = [&](Time, const Packet& pkt) {
    marked += pkt.ecn_marked ? 1 : 0;
  };
  sim.run_until(1_ms);
  EXPECT_GT(marked, 100) << "phantom queue must signal sub-line-rate";
}

TEST(Ecn, ReceiverGeneratesCnpsForMarkedPackets) {
  EcnConfig ecn;
  ecn.enabled = true;
  ecn.mark_threshold_bytes = 20 * 1024;
  EcnFixture fx(ecn, /*cnp_delay=*/3_us);
  fx.add_flow(1, fx.a, true);
  fx.add_flow(2, fx.b, true);
  int cnps = 0;
  fx.net->trace().cnp = [&](Time, FlowId) { ++cnps; };
  fx.sim.run_until(2_ms);
  EXPECT_GT(cnps, 100);
}

}  // namespace
}  // namespace dcdl
