// Property test of the paper's headline analytic result (§3.1, Eq. 3):
// in an n-switch routing loop at bandwidth B with initial TTL T, packet-
// level simulation deadlocks iff the injection rate exceeds n·B/TTL.
// Parameterized across loop lengths, TTLs, and bandwidths; each case is
// probed 30% below and 30% above its analytic threshold.
#include <gtest/gtest.h>

#include "dcdl/analysis/boundary.hpp"
#include "dcdl/scenarios/scenario.hpp"

namespace dcdl::scenarios {
namespace {

using namespace dcdl::literals;
using analysis::BoundaryModel;

struct LoopCase {
  int loop_len;
  int ttl;
  double bandwidth_gbps;
};

void PrintTo(const LoopCase& c, std::ostream* os) {
  *os << "n" << c.loop_len << "_ttl" << c.ttl << "_B"
      << static_cast<int>(c.bandwidth_gbps);
}

class Fig2Threshold : public testing::TestWithParam<LoopCase> {
 protected:
  bool simulate(Rate inject) {
    const LoopCase& c = GetParam();
    RoutingLoopParams p;
    p.loop_len = c.loop_len;
    p.ttl = c.ttl;
    p.bandwidth = Rate::gbps(c.bandwidth_gbps);
    p.inject = inject;
    Scenario s = make_routing_loop(p);
    const RunSummary r = run_and_check(s, 6_ms, 15_ms);
    return r.deadlocked;
  }
};

TEST_P(Fig2Threshold, BelowThresholdNoDeadlock) {
  const LoopCase& c = GetParam();
  const Rate thr = BoundaryModel::deadlock_threshold(
      c.loop_len, Rate::gbps(c.bandwidth_gbps), c.ttl);
  EXPECT_FALSE(simulate(Rate{static_cast<std::int64_t>(thr.bps() * 0.7)}));
}

TEST_P(Fig2Threshold, AboveThresholdDeadlocks) {
  const LoopCase& c = GetParam();
  const Rate thr = BoundaryModel::deadlock_threshold(
      c.loop_len, Rate::gbps(c.bandwidth_gbps), c.ttl);
  EXPECT_TRUE(simulate(Rate{static_cast<std::int64_t>(thr.bps() * 1.3)}));
}

INSTANTIATE_TEST_SUITE_P(
    LoopGrid, Fig2Threshold,
    testing::Values(
        // The paper's testbed configuration and variations of each knob.
        LoopCase{2, 16, 40},   // threshold 5 Gbps (§3.1)
        LoopCase{2, 8, 40},    // threshold 10 Gbps
        LoopCase{2, 32, 40},   // threshold 2.5 Gbps
        LoopCase{3, 16, 40},   // threshold 7.5 Gbps
        LoopCase{4, 16, 40},   // threshold 10 Gbps
        LoopCase{4, 32, 40},   // threshold 5 Gbps
        LoopCase{2, 16, 10},   // threshold 1.25 Gbps
        LoopCase{2, 16, 100},  // threshold 12.5 Gbps
        LoopCase{6, 24, 40}),  // threshold 10 Gbps
    testing::PrintToStringParamName());

TEST(Fig2TtlMitigation, TtlEqualToLoopNeverDeadlocks) {
  // §4: initial TTL <= loop length makes the threshold B, unreachable even
  // by a greedy source.
  RoutingLoopParams p;
  p.loop_len = 4;
  p.ttl = 4;
  p.inject = Rate::zero();  // greedy: as fast as the NIC can go
  Scenario s = make_routing_loop(p);
  const RunSummary r = run_and_check(s, 6_ms, 15_ms);
  EXPECT_FALSE(r.deadlocked);
}

TEST(Fig2TtlMitigation, GreedyWithLargeTtlDeadlocks) {
  RoutingLoopParams p;
  p.loop_len = 4;
  p.ttl = 32;
  p.inject = Rate::zero();
  Scenario s = make_routing_loop(p);
  const RunSummary r = run_and_check(s, 6_ms, 15_ms);
  EXPECT_TRUE(r.deadlocked);
}

}  // namespace
}  // namespace dcdl::scenarios
