#include <gtest/gtest.h>

#include <vector>

#include "dcdl/common/flags.hpp"

namespace dcdl {
namespace {

Flags make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()),
               const_cast<char**>(args.data()));
}

TEST(Flags, EqualsSyntax) {
  Flags f = make({"--rate=5.5", "--n=3", "--name=loop"});
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0), 5.5);
  EXPECT_EQ(f.get_int("n", 0), 3);
  EXPECT_EQ(f.get_string("name", ""), "loop");
}

TEST(Flags, SpaceSyntax) {
  Flags f = make({"--rate", "7", "--name", "x"});
  EXPECT_EQ(f.get_int("rate", 0), 7);
  EXPECT_EQ(f.get_string("name", ""), "x");
}

TEST(Flags, BareBooleans) {
  Flags f = make({"--verbose", "--fast=false", "--slow=0"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_FALSE(f.get_bool("fast", true));
  EXPECT_FALSE(f.get_bool("slow", true));
  EXPECT_TRUE(f.get_bool("absent", true));
}

TEST(Flags, DefaultsWhenAbsent) {
  Flags f = make({});
  EXPECT_EQ(f.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(f.get_double("x", 1.5), 1.5);
  EXPECT_EQ(f.get_string("s", "dft"), "dft");
}

TEST(Flags, Positional) {
  Flags f = make({"alpha", "--n=1", "beta"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "alpha");
  EXPECT_EQ(f.positional()[1], "beta");
}

TEST(Flags, CheckUnusedPassesWhenAllQueried) {
  Flags f = make({"--n=1"});
  f.get_int("n", 0);
  f.check_unused();  // must not exit
}

TEST(FlagsDeath, CheckUnusedCatchesTypos) {
  Flags f = make({"--rtae=5"});
  f.get_int("rate", 0);
  EXPECT_EXIT(f.check_unused(), testing::ExitedWithCode(2), "unknown flag");
}

}  // namespace
}  // namespace dcdl
