// Fluid (rate-based) PFC model — the paper's §3.3 "future work" analysis
// tool. Validated where flow-level analysis is exact (Eq. 3, stable
// shares) and pinned to its known blind spot (Figure 4).
#include <gtest/gtest.h>

#include "dcdl/analysis/boundary.hpp"
#include "dcdl/analysis/fluid.hpp"
#include "dcdl/scenarios/scenario.hpp"

namespace dcdl::analysis {
namespace {

using namespace dcdl::literals;

TEST(Fluid, LoopReproducesEq3Threshold) {
  // n=2, B=40G, TTL=16 -> 5 Gbps, same as BoundaryModel and the packet sim.
  for (const double g : {3.0, 4.0, 4.5}) {
    FluidModel m =
        make_fluid_routing_loop(2, Rate::gbps(40), 16, Rate::gbps(g));
    EXPECT_FALSE(m.run(10_ms).deadlocked) << g << " Gbps";
  }
  for (const double g : {5.5, 6.0, 9.0}) {
    FluidModel m =
        make_fluid_routing_loop(2, Rate::gbps(40), 16, Rate::gbps(g));
    EXPECT_TRUE(m.run(10_ms).deadlocked) << g << " Gbps";
  }
}

TEST(Fluid, LoopThresholdMatchesBoundaryModelAcrossGrid) {
  for (const int n : {2, 3, 4}) {
    for (const int ttl : {8, 16, 32}) {
      const Rate thr =
          BoundaryModel::deadlock_threshold(n, Rate::gbps(40), ttl);
      FluidModel below = make_fluid_routing_loop(
          n, Rate::gbps(40), ttl,
          Rate{static_cast<std::int64_t>(thr.bps() * 0.8)});
      EXPECT_FALSE(below.run(10_ms).deadlocked) << "n=" << n << " ttl=" << ttl;
      // Eq. 3's premise is a sustained injection of r. At the loop's entry
      // switch the injector fair-shares the egress with the circulating
      // stream, capping the sustainable r at B/2 — when the threshold
      // itself reaches that cap, the above-threshold probe is unreachable
      // (and indeed neither fluid nor packet simulation deadlocks there;
      // see LoopEntryShareCapsInjection).
      if (thr.bps() * 1.2 >= Rate::gbps(40).bps() / 2) continue;
      FluidModel above = make_fluid_routing_loop(
          n, Rate::gbps(40), ttl,
          Rate{static_cast<std::int64_t>(thr.bps() * 1.2)});
      EXPECT_TRUE(above.run(10_ms).deadlocked) << "n=" << n << " ttl=" << ttl;
    }
  }
}

TEST(Fluid, LoopEntryShareCapsInjection) {
  // n=4, TTL=8: threshold 20 Gbps == the entry-link fair share. A 24 Gbps
  // demand is admitted at only ~20 Gbps, so no deadlock — in the fluid
  // model AND in the packet-level simulator (which only deadlocks once
  // pause-release bursts let the injector transiently exceed the share,
  // around 30 Gbps demand).
  FluidModel fm =
      make_fluid_routing_loop(4, Rate::gbps(40), 8, Rate::gbps(24));
  EXPECT_FALSE(fm.run(10_ms).deadlocked);

  scenarios::RoutingLoopParams p;
  p.loop_len = 4;
  p.ttl = 8;
  p.inject = Rate::gbps(24);
  scenarios::Scenario s = scenarios::make_routing_loop(p);
  EXPECT_FALSE(scenarios::run_and_check(s, 8_ms, 15_ms).deadlocked);
}

TEST(Fluid, LoopDeadlockTimeShrinksWithRate) {
  FluidModel slow =
      make_fluid_routing_loop(2, Rate::gbps(40), 16, Rate::gbps(6));
  FluidModel fast =
      make_fluid_routing_loop(2, Rate::gbps(40), 16, Rate::gbps(12));
  const auto rs = slow.run(10_ms);
  const auto rf = fast.run(10_ms);
  ASSERT_TRUE(rs.deadlocked);
  ASSERT_TRUE(rf.deadlocked);
  EXPECT_LT(rf.deadlock_at, rs.deadlock_at);
}

TEST(Fluid, FourSwitchTwoFlowsStableState) {
  // The paper's own flow-level analysis: both flows get B/2 and there is
  // no deadlock. The host-facing ingress queues duty-cycle around the PFC
  // threshold; the ring queues stay empty in the fluid limit.
  FluidFourSwitch fs = make_fluid_four_switch(false);
  const FluidResult r = fs.model.run(10_ms);
  EXPECT_FALSE(r.deadlocked);
  ASSERT_EQ(r.mean_goodput_bps.size(), 2u);
  EXPECT_NEAR(r.mean_goodput_bps[0] / 1e9, 20.0, 1.0);
  EXPECT_NEAR(r.mean_goodput_bps[1] / 1e9, 20.0, 1.0);
  // Host ingress queues oscillate around 40 KB, paused about half the time.
  EXPECT_NEAR(r.paused_fraction[0], 0.5, 0.1);
  EXPECT_GT(r.max_bytes[0], 40 * 1024 - 2048);
  // Ring ingress queues carry no standing fluid (the blind spot).
  EXPECT_EQ(r.max_bytes[static_cast<std::size_t>(fs.rx1_A)], 0);
}

TEST(Fluid, FourSwitchSawtoothAmplitudeTracksControlDelay) {
  // The overshoot above Xoff is arrival_rate x control RTT: doubling the
  // delay roughly doubles the band above the threshold.
  FluidFourSwitch small = make_fluid_four_switch(false, Rate::zero(), 1_us);
  FluidFourSwitch large = make_fluid_four_switch(false, Rate::zero(), 4_us);
  const auto rs = small.model.run(10_ms);
  const auto rl = large.model.run(10_ms);
  const std::int64_t over_s = rs.max_bytes[0] - 40 * 1024;
  const std::int64_t over_l = rl.max_bytes[0] - 40 * 1024;
  EXPECT_GT(over_l, 2 * over_s);
}

TEST(Fluid, Figure4BlindSpot) {
  // "The stable state flow analysis based on PFC fairness [shows] all
  // flows should have 20Gbps throughput" — and hence no deadlock. The
  // packet-level simulation deadlocks (§3.2). The fluid model must land on
  // the flow-level side of that gap: this test pins the *model contrast*
  // that the paper's argument rests on.
  FluidFourSwitch fs = make_fluid_four_switch(true, Rate::gbps(40));
  const FluidResult fluid = fs.model.run(10_ms);
  EXPECT_FALSE(fluid.deadlocked);
  for (const double bps : fluid.mean_goodput_bps) {
    EXPECT_NEAR(bps / 1e9, 20.0, 1.5);
  }
  // The packet-level ground truth disagrees:
  scenarios::FourSwitchParams p;
  p.with_flow3 = true;
  scenarios::Scenario s = scenarios::make_four_switch(p);
  EXPECT_TRUE(scenarios::run_and_check(s, 20_ms, 10_ms).deadlocked);
}

TEST(Fluid, Flow3RateLimitKeepsSharesFeasible) {
  // With flow 3 shaped to 2 Gbps the fluid shares become 20/20/2 — the
  // feasibility the paper's §3.3 analysis starts from.
  FluidFourSwitch fs = make_fluid_four_switch(true, Rate::gbps(2));
  const FluidResult r = fs.model.run(10_ms);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_NEAR(r.mean_goodput_bps[0] / 1e9, 20.0, 1.5);
  EXPECT_NEAR(r.mean_goodput_bps[1] / 1e9, 20.0, 1.5);
  EXPECT_NEAR(r.mean_goodput_bps[2] / 1e9, 2.0, 0.3);
}

TEST(Fluid, GreedySingleFlowRunsAtLineRate) {
  FluidModel m;
  const int link0 = m.add_link(FluidLink{"src", Rate::gbps(40), 1_us});
  const int link1 = m.add_link(FluidLink{"mid", Rate::gbps(40), 1_us});
  const int q0 = m.add_queue(FluidQueue{"q0", 40 * 1024, 38 * 1024, link0});
  const int q1 = m.add_queue(FluidQueue{"q1", 40 * 1024, 38 * 1024, link1});
  FluidFlow f;
  f.queues = {q0, q1};
  m.add_flow(f);
  const FluidResult r = m.run(5_ms);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_NEAR(r.mean_goodput_bps[0] / 1e9, 40.0, 1.0);
  EXPECT_EQ(r.max_bytes[0], 0);  // rate-matched: no standing queue
}

TEST(Fluid, DemandLimitedFlowDeliversItsDemand) {
  FluidModel m;
  const int link0 = m.add_link(FluidLink{"src", Rate::gbps(40), 1_us});
  const int link1 = m.add_link(FluidLink{"mid", Rate::gbps(40), 1_us});
  const int q0 = m.add_queue(FluidQueue{"q0", 40 * 1024, 38 * 1024, link0});
  const int q1 = m.add_queue(FluidQueue{"q1", 40 * 1024, 38 * 1024, link1});
  FluidFlow f;
  f.demand = Rate::gbps(7);
  f.queues = {q0, q1};
  m.add_flow(f);
  const FluidResult r = m.run(5_ms);
  EXPECT_NEAR(r.mean_goodput_bps[0] / 1e9, 7.0, 0.3);
}

}  // namespace
}  // namespace dcdl::analysis
