// dcdl::forensics: causality-DAG construction, initial-trigger attribution,
// renderer format guarantees, offline JSONL round-trips, and determinism of
// the forensic artifacts across campaign --jobs levels.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dcdl/analysis/deadlock.hpp"
#include "dcdl/campaign/campaign.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/device/network.hpp"
#include "dcdl/forensics/forensics.hpp"
#include "dcdl/hybrid/hybrid.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/stats/hooks.hpp"
#include "dcdl/stats/pause_log.hpp"
#include "dcdl/telemetry/telemetry.hpp"
#include "dcdl/topo/generators.hpp"
#include "dcdl/traffic/flow.hpp"

namespace dcdl::forensics {
namespace {

using namespace dcdl::literals;
using namespace dcdl::scenarios;

// ----------------------------------------------------- hand-built cascades

/// The same 3-switch chain as tests/test_cascade.cpp (s0 — s1 — s2, 1 us
/// links), but driving the analyzer through a hand-assembled CausalInput so
/// every edge and depth is pinned to a known event order.
struct Chain {
  Topology topo;
  NodeId s0, s1, s2;
  CausalInput in;

  Chain() {
    s0 = topo.add_switch("s0");
    s1 = topo.add_switch("s1");
    s2 = topo.add_switch("s2");
    topo.add_link(s0, s1);  // 1 us default delay
    topo.add_link(s1, s2);
    in = make_input(topo);
  }

  QueueKey queue(NodeId at, NodeId from, ClassId cls = 0) const {
    return QueueKey{at, *topo.port_towards(at, from), cls};
  }

  void fire(int t_us, QueueKey q, bool paused) {
    in.pauses.push_back(
        {static_cast<std::int64_t>(t_us) * 1'000'000, q.node, q.port, q.cls,
         paused});
  }
};

TEST(CausalityTest, ChainAttributesOriginAndPropagatedDepths) {
  // Mirrors Cascade.ChainAttributesOriginAndPropagatedDepths: at 1 us
  // spacing over 1 us links every pause frame has just arrived, so the
  // DAG is the full chain 0 -> 1 -> 2.
  Chain c;
  c.fire(1, c.queue(c.s2, c.s1), true);
  c.fire(2, c.queue(c.s1, c.s0), true);
  c.fire(3, c.queue(c.s0, c.s1), true);
  const CascadeReport r = analyze(c.in);
  ASSERT_EQ(r.spans.size(), 3u);
  EXPECT_EQ(r.spans[0].depth, 0);
  EXPECT_EQ(r.spans[1].depth, 1);
  EXPECT_EQ(r.spans[2].depth, 2);
  ASSERT_EQ(r.components.size(), 1u);
  EXPECT_EQ(r.components[0].max_depth, 2);
  EXPECT_EQ(r.components[0].max_width, 1);
  EXPECT_EQ(r.components[0].root, 0u);
  ASSERT_TRUE(r.initial_trigger().has_value());
  EXPECT_EQ(*r.initial_trigger(), 0u);
  EXPECT_EQ(r.spans[0].queue, c.queue(c.s2, c.s1));
}

TEST(CausalityTest, SimultaneousParentsTakeMaxDepthPlusOne) {
  Chain c;
  c.fire(1, c.queue(c.s2, c.s1), true);
  c.fire(2, c.queue(c.s1, c.s0), true);
  c.fire(3, c.queue(c.s0, c.s1), true);
  c.fire(4, c.queue(c.s1, c.s2), true);  // parents: s0 (depth 2), s2 (0)
  const CascadeReport r = analyze(c.in);
  ASSERT_EQ(r.spans.size(), 4u);
  EXPECT_EQ(r.spans[3].depth, 3);
  EXPECT_EQ(r.spans[3].causes.size(), 2u);
  ASSERT_EQ(r.components.size(), 1u);
  EXPECT_EQ(r.components[0].max_depth, 3);
}

TEST(CausalityTest, XonSplitsSpansAndResetsAttribution) {
  Chain c;
  c.fire(1, c.queue(c.s2, c.s1), true);
  c.fire(2, c.queue(c.s2, c.s1), false);  // released
  c.fire(3, c.queue(c.s1, c.s0), true);   // no active parent: origin again
  const CascadeReport r = analyze(c.in);
  ASSERT_EQ(r.spans.size(), 2u);
  EXPECT_EQ(r.spans[0].end_ps, 2'000'000);
  EXPECT_EQ(r.spans[1].depth, 0);
  EXPECT_EQ(r.components.size(), 2u);
}

TEST(CausalityTest, ClassesDoNotCrossAttribute) {
  Chain c;
  c.fire(1, c.queue(c.s2, c.s1, 1), true);
  c.fire(2, c.queue(c.s1, c.s0, 0), true);
  const CascadeReport r = analyze(c.in);
  ASSERT_EQ(r.spans.size(), 2u);
  EXPECT_EQ(r.spans[1].depth, 0) << "class 1 must not parent class 0";
  EXPECT_EQ(r.components.size(), 2u);
}

TEST(CausalityTest, PauseFrameMustHaveArrivedToBeACause) {
  // The refinement over stats::analyze_pause_cascade: a downstream pause
  // asserted 0.5 us before the upstream one cannot be its cause over a
  // 1 us link — the Xoff frame was still in flight.
  Chain c;
  c.in.pauses.push_back({1'000'000, c.queue(c.s2, c.s1).node,
                         c.queue(c.s2, c.s1).port, 0, true});
  c.in.pauses.push_back({1'500'000, c.queue(c.s1, c.s0).node,
                         c.queue(c.s1, c.s0).port, 0, true});
  const CascadeReport r = analyze(c.in);
  ASSERT_EQ(r.spans.size(), 2u);
  EXPECT_EQ(r.spans[1].depth, 0) << "cause must be filtered by arrival time";
  EXPECT_TRUE(r.spans[1].causes.empty());
  EXPECT_EQ(r.components.size(), 2u);
}

TEST(CausalityTest, OpenSpansReachTheWindowEnd) {
  Chain c;
  c.in.window_end_ps = 9'000'000;
  c.fire(1, c.queue(c.s2, c.s1), true);  // never released
  const CascadeReport r = analyze(c.in);
  ASSERT_EQ(r.spans.size(), 1u);
  EXPECT_EQ(r.spans[0].end_ps, -1);
  EXPECT_EQ(r.window_end_ps, 9'000'000);
}

TEST(CausalityTest, OccupancyAnnotatesTheThresholdCrossing) {
  Chain c;
  const QueueKey q = c.queue(c.s2, c.s1);
  c.in.occupancy.push_back({500'000, q.node, q.port, q.cls, 39'000});
  c.in.occupancy.push_back({900'000, q.node, q.port, q.cls, 41'000});
  c.in.occupancy.push_back({2'000'000, q.node, q.port, q.cls, 50'000});
  c.fire(1, q, true);
  const CascadeReport r = analyze(c.in);
  ASSERT_EQ(r.spans.size(), 1u);
  EXPECT_EQ(r.spans[0].bytes_at_assert, 41'000u)
      << "last observation at/before the assertion, not a later one";
}

TEST(CausalityTest, TtlDropsClassifyTheCascadeAsRoutingLoop) {
  Chain c;
  c.fire(1, c.queue(c.s2, c.s1), true);
  c.in.drops.push_back(
      {500'000, c.s2, static_cast<std::uint8_t>(DropReason::kTtlExpired)});
  const CascadeReport loop = analyze(c.in);
  ASSERT_EQ(loop.components.size(), 1u);
  EXPECT_EQ(loop.components[0].trigger, TriggerKind::kRoutingLoop);

  // A non-TTL drop at the same switch is not loop evidence; with no hosts
  // attached the trigger stays a congestion cascade.
  c.in.drops[0].reason =
      static_cast<std::uint8_t>(DropReason::kBufferOverflow);
  const CascadeReport other = analyze(c.in);
  EXPECT_EQ(other.components[0].trigger, TriggerKind::kCongestionCascade);
}

TEST(CausalityTest, EdgeQueueClassifiesAsHostPause) {
  Topology topo;
  const NodeId sw = topo.add_switch("s");
  const NodeId host = topo.add_host("h");
  topo.add_link(sw, host);
  CausalInput in = make_input(topo);
  in.pauses.push_back({1'000'000, sw, *topo.port_towards(sw, host), 0, true});
  const CascadeReport r = analyze(in);
  ASSERT_EQ(r.components.size(), 1u);
  EXPECT_EQ(r.components[0].trigger, TriggerKind::kHostPause);
}

TEST(CausalityTest, DeadlockCycleMarksSpansAndPicksTheTrigger) {
  Chain c;
  c.fire(1, c.queue(c.s2, c.s1), true);
  c.fire(2, c.queue(c.s1, c.s0), true);
  c.fire(3, c.queue(c.s0, c.s1), true);
  c.in.deadlock_cycle = {c.queue(c.s1, c.s0), c.queue(c.s0, c.s1)};
  c.in.deadlock_at_ps = 5'000'000;
  const CascadeReport r = analyze(c.in);
  ASSERT_EQ(r.spans.size(), 3u);
  EXPECT_FALSE(r.spans[0].in_deadlock_cycle);
  EXPECT_TRUE(r.spans[1].in_deadlock_cycle);
  EXPECT_TRUE(r.spans[2].in_deadlock_cycle);
  ASSERT_TRUE(r.deadlock_trigger.has_value());
  EXPECT_EQ(*r.deadlock_trigger, 0u)
      << "the trigger is the root of the cascade holding the cycle";
  EXPECT_EQ(r.time_to_deadlock_ps, 4'000'000);
  ASSERT_EQ(r.components.size(), 1u);
  EXPECT_TRUE(r.components[0].contains_deadlock_cycle);
}

// ------------------------------------------------- end-to-end attribution

/// Fig. 2 routing-loop scenario above the deadlock boundary, fully
/// instrumented: recorder + pause log + monitor verdict.
struct LoopRun {
  Scenario s;
  telemetry::FlightRecorder rec;
  CascadeReport report;
  std::vector<telemetry::TraceRecord> records;
  std::vector<stats::QueueKey> cycle;
  Time detected_at = Time::zero();

  LoopRun() : s([] {
    RoutingLoopParams p;
    p.inject = Rate::gbps(7);
    return make_routing_loop(p);
  }()) {
    rec.attach(*s.net);
    analysis::DeadlockMonitor monitor(*s.net, Time{50'000'000}, 1_ms);
    monitor.start(Time::zero(), 20_ms);
    s.sim->run_until(20_ms);
    EXPECT_TRUE(monitor.deadlocked());
    records = rec.snapshot();
    cycle = monitor.cycle();
    detected_at = *monitor.detected_at();
    CausalInput in = input_from_records(*s.topo, records);
    in.deadlock_cycle = cycle;
    in.deadlock_at_ps = detected_at.ps();
    report = analyze(in);
  }
};

TEST(AttributionTest, Fig2LoopTriggerIsARecordedPauseWithLoopOrigin) {
  LoopRun run;
  ASSERT_TRUE(run.report.deadlock_trigger.has_value());
  const PauseSpan& t = run.report.spans[*run.report.deadlock_trigger];

  // The attributed trigger must be a real recorded Xoff: same switch,
  // port, class, and assertion instant as a pfc_xoff record.
  bool found = false;
  for (const telemetry::TraceRecord& r : run.records) {
    if (r.kind == telemetry::RecordKind::kPfcXoff && r.node == t.queue.node &&
        r.port == t.queue.port && r.cls == t.queue.cls &&
        r.t_ps == t.start_ps) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found) << "trigger does not match any recorded pfc_xoff";

  // It is the *first* pause of its cascade, on a queue of the confirmed
  // wait-for cycle, and classified as a routing-loop origin (the scenario's
  // injected root cause).
  const CascadeComponent& comp =
      run.report.components[static_cast<std::size_t>(t.component)];
  EXPECT_EQ(comp.root, *run.report.deadlock_trigger);
  for (const PauseSpan& s : run.report.spans) {
    if (s.component == t.component) {
      EXPECT_GE(s.start_ps, t.start_ps);
    }
  }
  EXPECT_EQ(comp.trigger, TriggerKind::kRoutingLoop);
  EXPECT_TRUE(comp.contains_deadlock_cycle);
  bool in_cycle = false;
  for (const stats::QueueKey& q : run.cycle) in_cycle |= (q == t.queue);
  EXPECT_TRUE(in_cycle);
  EXPECT_EQ(run.report.time_to_deadlock_ps,
            run.detected_at.ps() - t.start_ps);
}

TEST(AttributionTest, Fig1RingTriggerSitsOnTheConfirmedCycle) {
  Scenario s = make_ring_deadlock(RingDeadlockParams{});
  stats::PauseEventLog pauses(*s.net);
  const RunSummary r = run_and_check(s, 20_ms, 30_ms);
  ASSERT_TRUE(r.deadlocked);
  ASSERT_TRUE(r.detected_at.has_value());
  ASSERT_FALSE(r.cycle.empty());

  CausalInput in = input_from_pause_log(*s.topo, pauses, s.sim->now());
  in.deadlock_cycle = r.cycle;
  in.deadlock_at_ps = r.detected_at->ps();
  const CascadeReport report = analyze(in);
  ASSERT_TRUE(report.deadlock_trigger.has_value());
  const PauseSpan& t = report.spans[*report.deadlock_trigger];
  bool in_cycle = false;
  for (const stats::QueueKey& q : r.cycle) in_cycle |= (q == t.queue);
  EXPECT_TRUE(in_cycle) << "the ring's trigger is one of the cycle queues";
  EXPECT_TRUE(t.in_deadlock_cycle);
  EXPECT_EQ(t.end_ps, -1) << "a deadlocked queue never releases its pause";
  EXPECT_GT(report.time_to_deadlock_ps, 0);

  // The first pfc assertion of the deadlock component matches the pause
  // log exactly (queue identity and first-pause instant).
  bool found = false;
  for (const stats::PauseEvent& e : pauses.events()) {
    if (e.paused && stats::QueueKey{e.node, e.port, e.cls} == t.queue &&
        e.t.ps() == t.start_ps) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

// -------------------------------------------------------------- renderers

TEST(ReportTest, TextNamesTriggerDepthAndDeadlock) {
  LoopRun run;
  const std::string text = to_text(run.report);
  EXPECT_NE(text.find("deadlock: confirmed at t="), std::string::npos);
  EXPECT_NE(text.find("initial trigger:"), std::string::npos);
  EXPECT_NE(text.find("routing-loop origin"), std::string::npos);
  EXPECT_NE(text.find("cascade depth"), std::string::npos);
  EXPECT_NE(text.find("time-to-deadlock"), std::string::npos);
  EXPECT_NE(text.find("pause-storm fan-out:"), std::string::npos);
  EXPECT_EQ(text, to_text(run.report)) << "rendering must be deterministic";
}

TEST(ReportTest, DotIsAValidDigraphWithCycleHighlight) {
  LoopRun run;
  const std::string dot = to_dot(run.report);
  EXPECT_EQ(dot.rfind("digraph pause_cascade {", 0), 0u);
  EXPECT_EQ(dot.substr(dot.size() - 2), "}\n");
  std::size_t open = 0, close = 0;
  for (const char ch : dot) {
    open += ch == '{';
    close += ch == '}';
  }
  EXPECT_EQ(open, close);
  // One node statement per span, each with a label.
  for (std::size_t i = 0; i < run.report.spans.size(); ++i) {
    const std::string node = "  s" + std::to_string(i) + " [label=";
    EXPECT_NE(dot.find(node), std::string::npos) << "missing node " << i;
  }
  EXPECT_NE(dot.find("color=red"), std::string::npos)
      << "the wait-for cycle must be highlighted";
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos)
      << "triggers are double-bordered";
  EXPECT_NE(dot.find(" -> "), std::string::npos);
}

TEST(ReportTest, FlowArrowsLandInPerfettoExportAsFlowEvents) {
  LoopRun run;
  const std::vector<telemetry::FlowArrow> arrows = flow_arrows(run.report);
  ASSERT_FALSE(arrows.empty()) << "a deadlock cascade must have edges";
  const std::string json =
      to_perfetto_json(*run.s.topo, run.records, {}, arrows);

  // Shape: legacy flow events come in s/f pairs with binding point "e",
  // one pair per arrow, same id on both halves.
  std::size_t starts = 0, finishes = 0, pos = 0;
  while ((pos = json.find("\"ph\":\"s\"", pos)) != std::string::npos) {
    ++starts;
    pos += 8;
  }
  pos = 0;
  while ((pos = json.find("\"ph\":\"f\"", pos)) != std::string::npos) {
    ++finishes;
    pos += 8;
  }
  EXPECT_EQ(starts, arrows.size());
  EXPECT_EQ(finishes, arrows.size());
  EXPECT_NE(json.find("\"bt\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"pause cascade\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json, to_perfetto_json(*run.s.topo, run.records, {}, arrows));
}

// ------------------------------------------------------ offline round-trip

TEST(TraceIoTest, JsonlRoundTripPreservesRecordsAndTopology) {
  LoopRun run;
  const std::string jsonl = telemetry::to_jsonl(*run.s.topo, run.records);
  const LoadedTrace trace = parse_jsonl(jsonl);
  ASSERT_TRUE(trace.has_topology);
  EXPECT_FALSE(trace.post_mortem);
  ASSERT_EQ(trace.records.size(), run.records.size());
  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    EXPECT_EQ(trace.records[i].t_ps, run.records[i].t_ps);
    EXPECT_EQ(trace.records[i].kind, run.records[i].kind);
    EXPECT_EQ(trace.records[i].node, run.records[i].node);
  }
  EXPECT_EQ(trace.topo.node_count(), run.s.topo->node_count());
  EXPECT_EQ(trace.topo.link_count(), run.s.topo->link_count());
  // Replayed links must reproduce port numbering and delays exactly: the
  // offline analysis of the parsed trace matches the live one byte for
  // byte.
  CausalInput offline = input_from_trace(trace);
  offline.deadlock_cycle = run.cycle;
  offline.deadlock_at_ps = run.detected_at.ps();
  EXPECT_EQ(to_text(analyze(offline)), to_text(run.report));
  EXPECT_EQ(to_dot(analyze(offline)), to_dot(run.report));
}

TEST(TraceIoTest, PostMortemRoundTripCarriesTheVerdict) {
  LoopRun run;
  // Re-record through a recorder-backed dump so the header carries cycle +
  // detection time + topology.
  telemetry::FlightRecorder rec2;
  for (const telemetry::TraceRecord& r : run.records) rec2.record(r);
  const std::string dump = telemetry::post_mortem_jsonl(
      *run.s.topo, rec2, run.cycle, run.detected_at, 1u << 16);
  const LoadedTrace trace = parse_jsonl(dump);
  EXPECT_TRUE(trace.post_mortem);
  ASSERT_TRUE(trace.has_topology);
  ASSERT_TRUE(trace.detected_at_ps.has_value());
  EXPECT_EQ(*trace.detected_at_ps, run.detected_at.ps());
  ASSERT_EQ(trace.cycle.size(), run.cycle.size());
  for (std::size_t i = 0; i < trace.cycle.size(); ++i) {
    EXPECT_EQ(trace.cycle[i], run.cycle[i]);
  }
  // input_from_trace carries the verdict into the analysis unprompted.
  const CascadeReport offline = analyze(input_from_trace(trace));
  ASSERT_TRUE(offline.deadlock_trigger.has_value());
  EXPECT_EQ(to_text(offline), to_text(run.report));
}

TEST(TraceIoTest, MalformedInputThrowsWithLineNumbers) {
  EXPECT_THROW(parse_jsonl(""), std::runtime_error);
  EXPECT_THROW(parse_jsonl("{\"schema\":\"something.else\"}\n"),
               std::runtime_error);
  EXPECT_THROW(load_jsonl_file("/nonexistent/trace.jsonl"),
               std::runtime_error);
  // Topology-less dumps parse but cannot feed the causal analysis.
  const std::string bare = telemetry::to_jsonl({});
  const LoadedTrace trace = parse_jsonl(bare);
  EXPECT_FALSE(trace.has_topology);
  EXPECT_THROW(input_from_trace(trace), std::runtime_error);
}

TEST(TraceIoTest, DataplaneRecordsRoundTripAndRerenderByteIdentically) {
  // A run with the in-band pipeline on writes kDataplaneDetect (and, under
  // destructive policies, kDataplaneRecover) records into the v1 stream.
  // Parsing the JSONL and re-rendering it must be a fixed point: every
  // dataplane field survives one hop through dcdl_forensics' loader.
  ValleyViolationParams p;
  p.dataplane.policy = dataplane::RecoveryPolicy::kPfcLift;
  Scenario s = make_valley_violation(p);
  telemetry::FlightRecorder rec;
  rec.attach(*s.net);
  s.sim->run_until(20_ms);
  const std::vector<telemetry::TraceRecord> records = rec.snapshot();

  std::size_t detects = 0, recovers = 0;
  for (const telemetry::TraceRecord& r : records) {
    detects += r.kind == telemetry::RecordKind::kDataplaneDetect ? 1 : 0;
    recovers += r.kind == telemetry::RecordKind::kDataplaneRecover ? 1 : 0;
  }
  ASSERT_GT(detects, 0u) << "pipeline must reach kConfirmed within 20 ms";
  ASSERT_GT(recovers, 0u) << "kPfcLift acts and re-arms";

  const std::string jsonl = telemetry::to_jsonl(*s.topo, records);
  const LoadedTrace trace = parse_jsonl(jsonl);
  ASSERT_EQ(trace.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(trace.records[i].t_ps, records[i].t_ps);
    EXPECT_EQ(trace.records[i].kind, records[i].kind);
    EXPECT_EQ(trace.records[i].node, records[i].node);
    EXPECT_EQ(trace.records[i].bytes, records[i].bytes);
    EXPECT_EQ(trace.records[i].reason, records[i].reason);
  }
  EXPECT_EQ(telemetry::to_jsonl(trace.topo, trace.records), jsonl);
}

TEST(TraceIoTest, HybridRegionRecordsRoundTripAndRerenderByteIdentically) {
  // A hybrid (v4) run that escalates emits kRegionState transitions; the
  // round trip must preserve region index and level direction exactly.
  Simulator sim;
  topo::FatTreeTopo ft = topo::make_fat_tree(4);
  Network net(sim, ft.topo, NetConfig{});
  routing::install_shortest_paths(net);
  const int half = 2, hp = 4;
  std::vector<FlowSpec> flows;
  FlowId id = 1;
  for (int i = 1; i < hp; ++i) {  // greedy incast onto pod-0 host 0
    FlowSpec f;
    f.id = id++;
    f.src_host = ft.all_hosts[static_cast<std::size_t>(i)];
    f.dst_host = ft.all_hosts[0];
    f.packet_bytes = 1000;
    net.host_at(f.src_host).add_flow(f);
    flows.push_back(f);
  }
  for (int pod = 1; pod < 4; ++pod) {  // steady CBR background
    for (int i = 0; i < hp; ++i) {
      FlowSpec f;
      f.id = id++;
      f.src_host = ft.all_hosts[static_cast<std::size_t>(pod * hp + i)];
      f.dst_host = ft.all_hosts[static_cast<std::size_t>(
          pod * hp + (i + half) % hp)];
      f.packet_bytes = 1000;
      net.host_at(f.src_host).add_flow(
          f, std::make_unique<TokenBucketPacer>(Rate::gbps(4),
                                                2 * f.packet_bytes));
      flows.push_back(f);
    }
  }
  telemetry::FlightRecorder rec;
  rec.attach(net);
  hybrid::HybridConfig hc;
  hc.mode = hybrid::Mode::kRisk;
  hybrid::HybridController ctl(net, flows, hc);
  sim.run_until(1_ms);
  ctl.finalize();
  ASSERT_GE(ctl.stats().escalations, 1u);

  const std::vector<telemetry::TraceRecord> records = rec.snapshot();
  std::size_t regions = 0;
  for (const telemetry::TraceRecord& r : records) {
    regions += r.kind == telemetry::RecordKind::kRegionState ? 1 : 0;
  }
  ASSERT_GT(regions, 0u) << "escalations must land in the flight recorder";

  const std::string jsonl = telemetry::to_jsonl(ft.topo, records);
  const LoadedTrace trace = parse_jsonl(jsonl);
  ASSERT_EQ(trace.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(trace.records[i].kind, records[i].kind);
    EXPECT_EQ(trace.records[i].node, records[i].node)
        << "kRegionState carries the region index in `node`";
    EXPECT_EQ(trace.records[i].bytes, records[i].bytes);
  }
  EXPECT_EQ(telemetry::to_jsonl(trace.topo, trace.records), jsonl);
}

// ---------------------------------------------------------------- metrics

TEST(MetricsTest, CascadeSummaryLandsInTheRegistry) {
  Chain c;
  c.fire(1, c.queue(c.s2, c.s1), true);
  c.fire(2, c.queue(c.s1, c.s0), true);
  c.fire(3, c.queue(c.s0, c.s1), true);
  c.in.deadlock_cycle = {c.queue(c.s0, c.s1)};
  c.in.deadlock_at_ps = 5'000'000;
  const CascadeReport report = analyze(c.in);

  telemetry::MetricsRegistry reg;
  const CascadeMetricIds ids = register_cascade_metrics(reg);
  record_cascade(reg, ids, report);
  const telemetry::MetricsSnapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.value("forensics.pause_spans"), 3);
  EXPECT_DOUBLE_EQ(snap.value("forensics.cascades"), 1);
  EXPECT_DOUBLE_EQ(snap.value("forensics.cascade_max_depth"), 2);
  EXPECT_DOUBLE_EQ(snap.value("forensics.cascade_max_width"), 1);
  EXPECT_DOUBLE_EQ(snap.value("forensics.triggers.congestion"), 1);
  EXPECT_DOUBLE_EQ(snap.value("forensics.triggers.routing_loop"), 0);
  EXPECT_DOUBLE_EQ(snap.value("forensics.time_to_deadlock_ms"), 4e6 / 1e9);
  EXPECT_DOUBLE_EQ(snap.value("forensics.fanout.count"), 3);
}

TEST(MetricsTest, ExecutorAppendsForensicsToEveryRecord) {
  using namespace dcdl::campaign;
  ScenarioRegistry reg;
  register_builtin_scenarios(reg);
  SweepSpec spec;
  spec.scenario = "routing_loop";
  spec.axes = parse_grid("inject=7..7gbps:1");
  spec.run_for = 3_ms;
  spec.drain_grace = 10_ms;
  const CampaignResult result =
      CampaignExecutor(reg, {}).run(expand(spec));
  ASSERT_EQ(result.records.size(), 1u);
  const RunRecord& rec = result.records.front();
  ASSERT_EQ(rec.status, RunStatus::kOk);
  double spans = -1, loops = -1, ttd = -2;
  for (const auto& [name, value] : rec.telemetry) {
    if (name == "forensics.pause_spans") spans = value;
    if (name == "forensics.triggers.routing_loop") loops = value;
    if (name == "forensics.time_to_deadlock_ms") ttd = value;
  }
  EXPECT_GT(spans, 0) << "forensics.* must ride in RunRecord.telemetry";
  EXPECT_GT(loops, 0) << "the loop scenario's cascades are loop-origin";
  EXPECT_TRUE(rec.deadlocked);
  EXPECT_GT(ttd, 0);
}

// ------------------------------------------------------------ determinism

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

TEST(DeterminismTest, ForensicArtifactsAreByteIdenticalAcrossJobs) {
  // The --jobs gate for the new artifacts: report text, DOT, annotated
  // Perfetto trace, and post-mortem must not depend on scheduling.
  using namespace dcdl::campaign;
  ScenarioRegistry reg;
  register_builtin_scenarios(reg);
  SweepSpec spec;
  spec.scenario = "routing_loop";
  spec.axes = parse_grid("inject=4..7gbps:2");
  spec.run_for = 3_ms;
  spec.drain_grace = 10_ms;
  const std::vector<RunSpec> runs = expand(spec);

  const std::string base =
      (std::filesystem::path(::testing::TempDir()) / "forensics_jobs")
          .string();
  std::vector<std::string> dirs = {base + "_1", base + "_4"};
  for (const std::string& d : dirs) {
    std::filesystem::remove_all(d);
    ensure_output_dir(d);
  }
  ExecutorOptions one, four;
  one.jobs = 1;
  one.trace_dir = dirs[0];
  four.jobs = 4;
  four.trace_dir = dirs[1];
  CampaignExecutor(reg, one).run(runs);
  CampaignExecutor(reg, four).run(runs);

  std::size_t compared = 0;
  for (const char* suffix :
       {".forensics.txt", ".forensics.dot", ".trace.json",
        ".telemetry.jsonl", ".postmortem.jsonl"}) {
    for (const RunSpec& r : runs) {
      char idx[32];
      std::snprintf(idx, sizeof(idx), "run_%05d", r.run_index);
      const std::string a = dirs[0] + "/" + idx + suffix;
      if (!std::filesystem::exists(a)) continue;  // e.g. no post-mortem
      ++compared;
      EXPECT_EQ(slurp(a), slurp(dirs[1] + "/" + idx + suffix))
          << idx << suffix << " differs between --jobs 1 and --jobs 4";
    }
  }
  EXPECT_GE(compared, 2u * runs.size())
      << "forensics.txt and .dot must exist for every run";
  for (const std::string& d : dirs) std::filesystem::remove_all(d);
}

TEST(OutputDirTest, EnsureOutputDirRejectsUnwritablePaths) {
  using namespace dcdl::campaign;
  const std::string ok =
      (std::filesystem::path(::testing::TempDir()) / "forensics_probe/a/b")
          .string();
  EXPECT_NO_THROW(ensure_output_dir(ok));
  EXPECT_TRUE(std::filesystem::is_directory(ok));
  // A path whose parent is a *file* can never become a directory.
  const std::string file =
      (std::filesystem::path(::testing::TempDir()) / "forensics_probe/f")
          .string();
  { std::ofstream(file) << "x"; }
  EXPECT_THROW(ensure_output_dir(file + "/sub"), CampaignError);
  std::filesystem::remove_all(
      (std::filesystem::path(::testing::TempDir()) / "forensics_probe")
          .string());
}

}  // namespace
}  // namespace dcdl::forensics
