// Golden-trace determinism pins for the hot-path refactors.
//
// Each test replays a canonical paper scenario (Fig. 1 ring deadlock,
// Fig. 2 routing loop) and folds the *ordered* observation stream — every
// PFC transition, delivery, drop, and tx-start, each tagged with its
// timestamp and location — into an FNV-1a digest, then compares against a
// committed constant. Any change to event ordering, timing arithmetic, or
// accounting anywhere in the sim/device stack changes the digest; a
// refactor that claims to be behaviour-preserving must keep these bytes.
//
// The committed digests were produced by the pre-slab (std::function +
// hash-set) engine; the slab-allocated engine reproduces them exactly.
#include <gtest/gtest.h>

#include <cstdint>

#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/stats/hooks.hpp"

namespace dcdl {
namespace {

using namespace dcdl::literals;

/// Order-sensitive FNV-1a over 64-bit words (each mixed byte-by-byte).
class TraceDigest {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xFFu;
      h_ *= 1099511628211ULL;
    }
  }
  void event(std::uint8_t kind, Time t, std::uint64_t a, std::uint64_t b) {
    mix(kind);
    mix(static_cast<std::uint64_t>(t.ps()));
    mix(a);
    mix(b);
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ULL;
};

/// Attaches digest observers to every trace slot (through the same
/// append_hook path the stats layer uses), runs to `run_for`, and seals the
/// digest with the executed-event count and the residual buffered bytes.
std::uint64_t digest_run(scenarios::Scenario& s, Time run_for) {
  TraceDigest d;
  Trace& tr = s.net->trace();
  stats::append_hook<Time, NodeId, PortId, ClassId, bool>(
      tr.pfc_state,
      [&d](Time t, NodeId node, PortId port, ClassId cls, bool paused) {
        d.event(1, t,
                (static_cast<std::uint64_t>(node) << 32) |
                    (static_cast<std::uint64_t>(port) << 8) | cls,
                paused ? 1 : 0);
      });
  stats::append_hook<Time, const Packet&>(
      tr.delivered, [&d](Time t, const Packet& pkt) {
        d.event(2, t, (static_cast<std::uint64_t>(pkt.dst) << 32) | pkt.flow,
                pkt.id);
      });
  stats::append_hook<Time, const Packet&, NodeId, DropReason>(
      tr.dropped, [&d](Time t, const Packet& pkt, NodeId node, DropReason r) {
        d.event(3, t,
                (static_cast<std::uint64_t>(node) << 32) |
                    static_cast<std::uint64_t>(r),
                pkt.id);
      });
  stats::append_hook<Time, const Packet&, NodeId, PortId>(
      tr.tx_start, [&d](Time t, const Packet& pkt, NodeId node, PortId port) {
        d.event(4, t,
                (static_cast<std::uint64_t>(node) << 32) | port, pkt.id);
      });
  s.sim->run_until(run_for);
  d.mix(s.sim->events_executed());
  d.mix(static_cast<std::uint64_t>(s.net->total_queued_bytes()));
  return d.value();
}

TEST(GoldenTrace, Fig1RingDeadlock) {
  scenarios::RingDeadlockParams p;  // 3 switches, span 2, jittered, seed 1
  scenarios::Scenario s = scenarios::make_ring_deadlock(p);
  EXPECT_EQ(digest_run(s, 2_ms), 0x1f910508462cb0deULL);
}

TEST(GoldenTrace, Fig2RoutingLoop) {
  scenarios::RoutingLoopParams p;  // 2-switch loop, TTL 16, 6 Gbps inject
  p.inject = Rate::gbps(8);        // above the Eq. 3 boundary: deadlocks
  scenarios::Scenario s = scenarios::make_routing_loop(p);
  EXPECT_EQ(digest_run(s, 2_ms), 0xf0b42047ad726071ULL);
}

TEST(GoldenTrace, Fig2RoutingLoopBelowBoundary) {
  // Below the boundary the loop drains by TTL alone and never deadlocks —
  // a digest over a drop-heavy (TTL-expiry) stream pins that path too.
  scenarios::RoutingLoopParams p;
  p.inject = Rate::gbps(4);
  scenarios::Scenario s = scenarios::make_routing_loop(p);
  EXPECT_EQ(digest_run(s, 2_ms), 0x2e71b4119a39bab9ULL);
}

}  // namespace
}  // namespace dcdl
