// Host/NIC model: flow scheduling, pacing, PFC backpressure at the source.
#include <gtest/gtest.h>

#include "dcdl/device/host.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/topo/generators.hpp"

namespace dcdl {
namespace {

using namespace dcdl::literals;
using namespace dcdl::topo;

struct Pair {
  Simulator sim;
  Topology topo;
  NodeId s, h0, h1;
  std::unique_ptr<Network> net;

  Pair() {
    s = topo.add_switch("S");
    h0 = topo.add_host("h0");
    h1 = topo.add_host("h1");
    topo.add_link(s, h0, Rate::gbps(40), 1_us);
    topo.add_link(s, h1, Rate::gbps(40), 1_us);
    net = std::make_unique<Network>(sim, topo, NetConfig{});
    routing::install_shortest_paths(*net);
  }
};

TEST(Host, CbrFlowHitsConfiguredRate) {
  Pair fx;
  FlowSpec f;
  f.id = 1;
  f.src_host = fx.h0;
  f.dst_host = fx.h1;
  f.packet_bytes = 1000;
  fx.net->host_at(fx.h0).add_flow(
      f, std::make_unique<TokenBucketPacer>(Rate::gbps(7), 1000));
  fx.sim.run_until(10_ms);
  const double sent = static_cast<double>(fx.net->host_at(fx.h0).sent_bytes(1));
  EXPECT_NEAR(sent * 8 / 10e-3, 7e9, 0.05e9);
}

TEST(Host, FlowStartAndStopWindows) {
  Pair fx;
  FlowSpec f;
  f.id = 1;
  f.src_host = fx.h0;
  f.dst_host = fx.h1;
  f.packet_bytes = 1000;
  f.start = 1_ms;
  f.stop = 2_ms;
  fx.net->host_at(fx.h0).add_flow(
      f, std::make_unique<TokenBucketPacer>(Rate::gbps(8), 1000));
  fx.sim.run_until(500_us);
  EXPECT_EQ(fx.net->host_at(fx.h0).sent_packets(1), 0u);
  fx.sim.run_until(3_ms);
  const double sent = static_cast<double>(fx.net->host_at(fx.h0).sent_bytes(1));
  // 8 Gbps for the 1 ms window = 1 MB.
  EXPECT_NEAR(sent, 1e6, 0.05e6);
}

TEST(Host, StopFlowIsImmediate) {
  Pair fx;
  FlowSpec f;
  f.id = 1;
  f.src_host = fx.h0;
  f.dst_host = fx.h1;
  f.packet_bytes = 1000;
  fx.net->host_at(fx.h0).add_flow(f);
  fx.sim.run_until(100_us);
  const auto sent_at_stop = fx.net->host_at(fx.h0).sent_packets(1);
  EXPECT_GT(sent_at_stop, 0u);
  fx.net->host_at(fx.h0).stop_flow(1);
  fx.sim.run_until(200_us);
  EXPECT_EQ(fx.net->host_at(fx.h0).sent_packets(1), sent_at_stop);
}

TEST(Host, ActiveFlowsShareNicRoundRobin) {
  Pair fx;
  for (FlowId id : {1u, 2u, 3u, 4u}) {
    FlowSpec f;
    f.id = id;
    f.src_host = fx.h0;
    f.dst_host = fx.h1;
    f.packet_bytes = 1000;
    fx.net->host_at(fx.h0).add_flow(f);
  }
  fx.sim.run_until(1_ms);
  const auto base = fx.net->host_at(fx.h0).sent_packets(1);
  EXPECT_GT(base, 0u);
  for (FlowId id : {2u, 3u, 4u}) {
    EXPECT_NEAR(static_cast<double>(fx.net->host_at(fx.h0).sent_packets(id)),
                static_cast<double>(base), 2.0);
  }
}

TEST(Host, HonoursPfcPause) {
  // Pause the host directly and check injection stops until resume.
  Pair fx;
  FlowSpec f;
  f.id = 1;
  f.src_host = fx.h0;
  f.dst_host = fx.h1;
  f.packet_bytes = 1000;
  fx.net->host_at(fx.h0).add_flow(f);
  fx.sim.schedule_at(100_us, [&] { fx.net->host_at(fx.h0).on_pfc(0, 0, true); });
  fx.sim.run_until(150_us);
  const auto paused_count = fx.net->host_at(fx.h0).sent_packets(1);
  fx.sim.run_until(400_us);
  // At most one in-flight packet finishes after the pause lands.
  EXPECT_LE(fx.net->host_at(fx.h0).sent_packets(1), paused_count + 1);
  fx.net->host_at(fx.h0).on_pfc(0, 0, false);
  fx.sim.run_until(500_us);
  EXPECT_GT(fx.net->host_at(fx.h0).sent_packets(1), paused_count + 10);
}

TEST(Host, PauseIsPerClass) {
  Pair fx;
  FlowSpec f0;
  f0.id = 1;
  f0.src_host = fx.h0;
  f0.dst_host = fx.h1;
  f0.packet_bytes = 1000;
  f0.prio = 0;
  FlowSpec f1 = f0;
  f1.id = 2;
  f1.prio = 0;  // same class initially
  NetConfig cfg;
  cfg.num_classes = 2;
  Simulator sim;
  Network net(sim, fx.topo, cfg);
  routing::install_shortest_paths(net);
  f1.prio = 1;
  net.host_at(fx.h0).add_flow(f0);
  net.host_at(fx.h0).add_flow(f1);
  // Pause class 0 only.
  sim.schedule_at(10_us, [&] { net.host_at(fx.h0).on_pfc(0, 0, true); });
  sim.run_until(1_ms);
  const auto sent0 = net.host_at(fx.h0).sent_packets(1);
  const auto sent1 = net.host_at(fx.h0).sent_packets(2);
  EXPECT_LT(sent0, 100u);   // throttled almost immediately
  EXPECT_GT(sent1, 4000u);  // class 1 owns the NIC afterwards
}

TEST(Host, DeliveryStatsMatchSent) {
  Pair fx;
  FlowSpec f;
  f.id = 1;
  f.src_host = fx.h0;
  f.dst_host = fx.h1;
  f.packet_bytes = 500;
  fx.net->host_at(fx.h0).add_flow(
      f, std::make_unique<TokenBucketPacer>(Rate::gbps(2), 500));
  fx.sim.run_until(1_ms);
  fx.net->host_at(fx.h0).stop_all_flows();
  fx.sim.run_until(2_ms);  // drain
  EXPECT_EQ(fx.net->host_at(fx.h0).sent_packets(1),
            fx.net->host_at(fx.h1).delivered_packets(1));
  EXPECT_EQ(fx.net->host_at(fx.h0).sent_bytes(1),
            fx.net->host_at(fx.h1).delivered_bytes(1));
}

}  // namespace
}  // namespace dcdl
