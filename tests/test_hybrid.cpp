// Hybrid fluid/packet engine: verdict-equivalence guarantees and the
// risk-guided zoom.
//
// The contract under test (ISSUE: "hard bar"): on every campaign-suite
// deadlock scenario the hybrid engine reports the same deadlock verdict,
// the same detection time, and the same forensics trigger attribution as
// the pure packet run — by construction, because nothing in a congested
// cyclic-dependency workload is fluidization-eligible. And on a fabric
// with genuinely steady unsaturated traffic the engine must actually
// fluidize (otherwise the zoom is dead weight) while delivering the same
// bytes the packet level would.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dcdl/analysis/fluid.hpp"
#include "dcdl/campaign/campaign.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/device/network.hpp"
#include "dcdl/hybrid/hybrid.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/topo/generators.hpp"
#include "dcdl/traffic/flow.hpp"

namespace dcdl {
namespace {

using namespace dcdl::literals;
using namespace dcdl::campaign;

/// Runs one registry scenario cell standalone under the given hybrid mode.
RunRecord run_one(const std::string& scenario, const ParamMap& base,
                  hybrid::Mode mode, Time run_for = 6_ms,
                  Time drain = 16_ms) {
  ScenarioRegistry reg;
  register_builtin_scenarios(reg);
  SweepSpec spec;
  spec.scenario = scenario;
  spec.base = base;
  spec.seeds_per_cell = 1;
  spec.root_seed = 7;
  spec.run_for = run_for;
  spec.drain_grace = drain;
  spec.monitor_dwell = 1_ms;
  const std::vector<RunSpec> runs = expand(spec);
  ExecutorOptions opts;
  opts.hybrid.mode = mode;
  return execute_run(reg, runs[0], nullptr, opts);
}

std::vector<std::pair<std::string, double>> forensics_of(
    const RunRecord& r) {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& kv : r.telemetry) {
    if (kv.first.rfind("forensics.", 0) == 0) out.push_back(kv);
  }
  return out;
}

/// The hard bar: same verdict, same detection time, same trapped bytes,
/// same per-flow delivered stream, same forensics trigger attribution.
/// On these congested workloads nothing is eligible to fluidize, so the
/// equivalence is exact, not approximate.
void expect_equivalent(const RunRecord& off, const RunRecord& hy,
                       const char* label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(off.status, RunStatus::kOk);
  ASSERT_EQ(hy.status, RunStatus::kOk);
  EXPECT_EQ(off.deadlocked, hy.deadlocked);
  EXPECT_DOUBLE_EQ(off.detect_ms, hy.detect_ms);
  EXPECT_EQ(off.trapped_bytes, hy.trapped_bytes);
  EXPECT_DOUBLE_EQ(off.goodput_gbps, hy.goodput_gbps);
  EXPECT_EQ(off.pause_assertions, hy.pause_assertions);
  EXPECT_EQ(off.delivered, hy.delivered);
  EXPECT_EQ(forensics_of(off), forensics_of(hy));
  EXPECT_EQ(off.hybrid_mode, "off");
  EXPECT_EQ(hy.hybrid_mode, "risk");
  EXPECT_EQ(hy.fluid_fraction, 0.0);
}

TEST(HybridEquivalence, Fig2LoopAcrossEq3Boundary) {
  for (const double inject : {4.0, 6.0}) {
    ParamMap base;
    base.set("inject", ParamValue::of_double(inject));
    const RunRecord off = run_one("routing_loop", base, hybrid::Mode::kOff);
    const RunRecord hy = run_one("routing_loop", base, hybrid::Mode::kRisk);
    expect_equivalent(off, hy,
                      inject < 5 ? "loop below threshold"
                                 : "loop above threshold");
    EXPECT_EQ(off.deadlocked, inject > 5.0);
  }
}

TEST(HybridEquivalence, FourSwitchFig3NoThirdFlow) {
  ParamMap base;
  base.set("with_flow3", ParamValue::of_bool(false));
  const RunRecord off =
      run_one("four_switch", base, hybrid::Mode::kOff, 6_ms, 16_ms);
  const RunRecord hy =
      run_one("four_switch", base, hybrid::Mode::kRisk, 6_ms, 16_ms);
  expect_equivalent(off, hy, "fig3 two flows");
  EXPECT_FALSE(off.deadlocked);
}

TEST(HybridEquivalence, FourSwitchFig4GreedyThirdFlow) {
  ParamMap base;
  base.set("with_flow3", ParamValue::of_bool(true));
  const RunRecord off =
      run_one("four_switch", base, hybrid::Mode::kOff, 20_ms, 10_ms);
  const RunRecord hy =
      run_one("four_switch", base, hybrid::Mode::kRisk, 20_ms, 10_ms);
  expect_equivalent(off, hy, "fig4 greedy flow 3");
  EXPECT_TRUE(off.deadlocked);

  // The fluid twin of the same workload lands on the *wrong* side — the
  // paper's §3.2 gap. The hybrid engine must not inherit the blind spot:
  // flow 3 is greedy and the fabric is saturated, so nothing fluidizes and
  // the verdict above came from packet-level ground truth.
  analysis::FluidFourSwitch twin =
      analysis::make_fluid_four_switch(true, Rate::gbps(40));
  EXPECT_FALSE(twin.model.run(10_ms).deadlocked);
}

TEST(HybridEquivalence, FourSwitchFig5RateLimitBoundary) {
  // Table 1 / Fig. 5: a 2 Gbps ingress limit on flow 3 keeps the fabric
  // safe; relaxing it far enough re-arms the Fig. 4 deadlock. Hybrid must
  // agree with the packet engine on both sides of the boundary.
  for (const double limit : {2.0, 8.0}) {
    ParamMap base;
    base.set("with_flow3", ParamValue::of_bool(true));
    base.set("flow3_limit", ParamValue::of_double(limit));
    const RunRecord off =
        run_one("four_switch", base, hybrid::Mode::kOff, 20_ms, 10_ms);
    const RunRecord hy =
        run_one("four_switch", base, hybrid::Mode::kRisk, 20_ms, 10_ms);
    expect_equivalent(off, hy, "fig5 rate-limit boundary");
    EXPECT_EQ(off.deadlocked, hy.deadlocked);
  }
}

TEST(HybridEquivalence, ValleyCascade) {
  ParamMap base;
  const RunRecord off =
      run_one("valley", base, hybrid::Mode::kOff, 6_ms, 16_ms);
  const RunRecord hy =
      run_one("valley", base, hybrid::Mode::kRisk, 6_ms, 16_ms);
  expect_equivalent(off, hy, "valley cascade");
}

TEST(HybridEquivalence, StaticModeMatchesToo) {
  // Static mode never de-escalates and reassesses no risk, but the
  // eligibility rules are the same — the loop still packetizes entirely.
  ParamMap base;
  base.set("inject", ParamValue::of_double(6.0));
  const RunRecord off = run_one("routing_loop", base, hybrid::Mode::kOff);
  const RunRecord hy = run_one("routing_loop", base, hybrid::Mode::kStatic);
  ASSERT_EQ(hy.status, RunStatus::kOk);
  EXPECT_EQ(off.deadlocked, hy.deadlocked);
  EXPECT_DOUBLE_EQ(off.detect_ms, hy.detect_ms);
  EXPECT_EQ(off.delivered, hy.delivered);
  EXPECT_EQ(hy.hybrid_mode, "static");
}

TEST(HybridExecutor, ArtifactsByteIdenticalAcrossJobsAndShards) {
  ScenarioRegistry reg;
  register_builtin_scenarios(reg);
  SweepSpec spec;
  spec.scenario = "routing_loop";
  spec.axes = parse_grid("inject=4..6gbps:2");
  spec.seeds_per_cell = 2;
  spec.root_seed = 11;
  spec.run_for = 2_ms;
  spec.drain_grace = 6_ms;
  const std::vector<RunSpec> runs = expand(spec);

  // The sharded engine's byte-identity contract holds across every
  // --shards >= 1 (sim.* gauges differ structurally from the legacy
  // engine's, so shards=0 is not in the comparison set — same as the
  // test_sharded digests).
  ExecutorOptions serial;
  serial.jobs = 1;
  serial.shards = 1;
  serial.hybrid.mode = hybrid::Mode::kRisk;
  const CampaignResult r1 =
      CampaignExecutor(reg, serial).run(runs, spec.root_seed);
  ExecutorOptions wide;
  wide.jobs = 4;
  wide.shards = 2;
  wide.hybrid.mode = hybrid::Mode::kRisk;
  const CampaignResult r4 =
      CampaignExecutor(reg, wide).run(runs, spec.root_seed);

  ASSERT_EQ(r1.count(RunStatus::kOk), runs.size());
  EXPECT_EQ(to_json(r1), to_json(r4));
  EXPECT_EQ(to_csv(r1), to_csv(r4));
  for (const RunRecord& rec : r1.records) {
    EXPECT_EQ(rec.hybrid_mode, "risk");
  }
}

// ---------------------------------------------------------------------------
// The zoom must actually engage where it is supposed to.

TEST(HybridZoom, SteadyFabricFluidizesAndDeliversTheSameBytes) {
  // k=4 fat-tree, every pod runs an intra-pod CBR permutation at 10% line
  // rate: steady, unsaturated, loop-free — prime fluidization territory.
  auto build = [](Simulator& sim, topo::FatTreeTopo& ft,
                  std::optional<Network>& net,
                  std::vector<FlowSpec>& flows) {
    ft = topo::make_fat_tree(4);
    net.emplace(sim, ft.topo, NetConfig{});
    routing::install_shortest_paths(*net);
    const int half = 2, hp = 4;
    FlowId id = 1;
    for (int pod = 0; pod < 4; ++pod) {
      for (int i = 0; i < hp; ++i) {
        FlowSpec f;
        f.id = id++;
        f.src_host = ft.all_hosts[static_cast<std::size_t>(pod * hp + i)];
        f.dst_host = ft.all_hosts[static_cast<std::size_t>(
            pod * hp + (i + half) % hp)];
        f.packet_bytes = 1000;
        net->host_at(f.src_host).add_flow(
            f, std::make_unique<TokenBucketPacer>(Rate::gbps(4),
                                                  2 * f.packet_bytes));
        flows.push_back(f);
      }
    }
  };

  // Packet-level reference run.
  Simulator ref_sim;
  topo::FatTreeTopo ref_ft;
  std::optional<Network> ref_net;
  std::vector<FlowSpec> ref_flows;
  build(ref_sim, ref_ft, ref_net, ref_flows);
  ref_sim.run_until(1_ms);

  // Hybrid risk run of the identical workload.
  Simulator sim;
  topo::FatTreeTopo ft;
  std::optional<Network> net;
  std::vector<FlowSpec> flows;
  build(sim, ft, net, flows);
  hybrid::HybridConfig hc;
  hc.mode = hybrid::Mode::kRisk;
  hybrid::HybridController ctl(*net, flows, hc);
  sim.run_until(1_ms);
  ctl.finalize();

  // Everything is eligible and nothing ever escalates.
  EXPECT_GT(ctl.stats().fluid_fraction, 0.9);
  EXPECT_EQ(ctl.stats().escalations, 0u);
  EXPECT_GT(ctl.stats().credited_packets, 0u);
  for (const FlowSpec& f : flows) EXPECT_TRUE(ctl.flow_fluid(f.id));

  // Delivered bytes match the packet level per flow to within a handful of
  // packets (fluid credits land in whole packets at 100 us steps; the
  // packet level has a path's worth of in-flight bytes at the cutoff).
  for (const FlowSpec& f : flows) {
    const std::int64_t ref =
        ref_net->host_at(f.dst_host).delivered_bytes(f.id);
    const std::int64_t hyb = net->host_at(f.dst_host).delivered_bytes(f.id);
    EXPECT_NEAR(static_cast<double>(hyb), static_cast<double>(ref),
                10.0 * f.packet_bytes)
        << "flow " << f.id;
    // ~4 Gbps * 1 ms = 500 KB; both engines must be in that ballpark.
    EXPECT_GT(hyb, 450'000);
    EXPECT_LT(hyb, 550'000);
  }
}

TEST(HybridZoom, LocalizedIncastEscalatesOnlyTheHotPod) {
  // Pod 0: greedy incast onto host 0 (packet forever — greedy flows are
  // ineligible). Pods 1..3: the steady CBR permutation. The zoom must
  // escalate pod 0's region and leave the background fluid.
  Simulator sim;
  topo::FatTreeTopo ft = topo::make_fat_tree(4);
  Network net(sim, ft.topo, NetConfig{});
  routing::install_shortest_paths(net);
  const int half = 2, hp = 4;
  std::vector<FlowSpec> flows;
  FlowId id = 1;
  for (int i = 1; i < hp; ++i) {
    FlowSpec f;
    f.id = id++;
    f.src_host = ft.all_hosts[static_cast<std::size_t>(i)];
    f.dst_host = ft.all_hosts[0];
    f.packet_bytes = 1000;
    net.host_at(f.src_host).add_flow(f);
    flows.push_back(f);
  }
  for (int pod = 1; pod < 4; ++pod) {
    for (int i = 0; i < hp; ++i) {
      FlowSpec f;
      f.id = id++;
      f.src_host = ft.all_hosts[static_cast<std::size_t>(pod * hp + i)];
      f.dst_host = ft.all_hosts[static_cast<std::size_t>(
          pod * hp + (i + half) % hp)];
      f.packet_bytes = 1000;
      net.host_at(f.src_host).add_flow(
          f, std::make_unique<TokenBucketPacer>(Rate::gbps(4),
                                                2 * f.packet_bytes));
      flows.push_back(f);
    }
  }

  hybrid::HybridConfig hc;
  hc.mode = hybrid::Mode::kRisk;
  hybrid::HybridController ctl(net, flows, hc);
  sim.run_until(1_ms);
  ctl.finalize();

  EXPECT_GE(ctl.stats().escalations, 1u);
  EXPECT_TRUE(ctl.region_packet(ctl.region_of(ft.edge[0][0])));
  // Background pods stay fluid: 12 of 15 flows.
  std::size_t fluid = 0;
  for (const FlowSpec& f : flows) fluid += ctl.flow_fluid(f.id) ? 1 : 0;
  EXPECT_EQ(fluid, 12u);
  EXPECT_GT(ctl.stats().fluid_fraction, 0.5);
}

// ---------------------------------------------------------------------------
// FluidResult cycle membership (satellite: the fluid verdict now names the
// queues that froze).

TEST(HybridFluidVerdict, DeadlockedLoopReportsItsCycleQueues) {
  analysis::FluidModel m = analysis::make_fluid_routing_loop(
      3, Rate::gbps(40), 16, Rate::gbps(8));
  const analysis::FluidResult r = m.run(10_ms);
  ASSERT_TRUE(r.deadlocked);
  // All three loop ingress queues freeze together.
  EXPECT_GE(r.deadlock_queues.size(), 3u);

  analysis::FluidModel quiet = analysis::make_fluid_routing_loop(
      3, Rate::gbps(40), 16, Rate::gbps(2));
  const analysis::FluidResult q = quiet.run(10_ms);
  EXPECT_FALSE(q.deadlocked);
  EXPECT_TRUE(q.deadlock_queues.empty());
}

}  // namespace
}  // namespace dcdl
