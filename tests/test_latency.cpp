// Latency meter: correctness of the statistics and sanity of the measured
// pipeline latencies.
#include <gtest/gtest.h>

#include "dcdl/device/host.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/stats/latency.hpp"
#include "dcdl/topo/generators.hpp"

namespace dcdl::stats {
namespace {

using namespace dcdl::literals;
using namespace dcdl::topo;

struct Fx {
  Simulator sim;
  RingTopo line = make_line(2, 1, LinkParams{Rate::gbps(40), 1_us});
  Topology topo = line.topo;
  std::unique_ptr<Network> net;

  Fx() {
    net = std::make_unique<Network>(sim, topo, NetConfig{});
    routing::install_shortest_paths(*net);
  }
};

TEST(Latency, UncontestedFlowLatencyIsPipelineDepth) {
  Fx fx;
  FlowSpec f;
  f.id = 1;
  f.src_host = fx.line.hosts[0][0];
  f.dst_host = fx.line.hosts[1][0];
  f.packet_bytes = 1000;
  fx.net->host_at(f.src_host).add_flow(
      f, std::make_unique<TokenBucketPacer>(Rate::gbps(1), 1000));
  LatencyMeter meter(*fx.net);
  fx.sim.run_until(1_ms);
  ASSERT_GT(meter.samples(1), 50u);
  // 3 hops of 200 ns serialization + 1 us propagation each = 3.6 us.
  EXPECT_EQ(meter.percentile(1, 0.5), Time{3 * 1'200'000});
  EXPECT_EQ(meter.mean(1), meter.max(1));  // no queueing at 1 Gbps
}

TEST(Latency, CongestionRaisesTheTail) {
  // Two greedy sources on different hosts squeeze through one inter-switch
  // link: packets queue at the switch behind the PFC-governed backlog.
  Simulator sim;
  const RingTopo line = make_line(2, 2, LinkParams{Rate::gbps(40), 1_us});
  Topology topo = line.topo;
  Network net(sim, topo, NetConfig{});
  routing::install_shortest_paths(net);
  for (const FlowId id : {1u, 2u}) {
    FlowSpec f;
    f.id = id;
    f.src_host = line.hosts[0][id - 1];
    f.dst_host = line.hosts[1][id - 1];
    f.packet_bytes = 1000;
    net.host_at(f.src_host).add_flow(f);
  }
  LatencyMeter meter(net);
  sim.run_until(2_ms);
  // Queueing behind PFC-paced buffers: p99 well above the 3.6 us pipe.
  EXPECT_GT(meter.percentile(1, 0.99), Time{10'000'000});
  EXPECT_GE(meter.percentile(1, 0.99), meter.percentile(1, 0.5));
  EXPECT_GE(meter.max(1), meter.percentile(1, 0.99));
}

TEST(Latency, PooledPercentileCoversAllFlows) {
  Fx fx;
  for (const FlowId id : {1u, 2u}) {
    FlowSpec f;
    f.id = id;
    f.src_host = fx.line.hosts[0][0];
    f.dst_host = fx.line.hosts[1][0];
    f.packet_bytes = 1000;
    fx.net->host_at(f.src_host).add_flow(
        f, std::make_unique<TokenBucketPacer>(Rate::gbps(2), 1000));
  }
  LatencyMeter meter(*fx.net);
  fx.sim.run_until(1_ms);
  const Time pooled = meter.percentile_of({1u, 2u}, 0.5);
  EXPECT_GE(pooled, std::min(meter.percentile(1, 0.5), meter.percentile(2, 0.5)));
  EXPECT_LE(pooled, std::max(meter.percentile(1, 0.99), meter.percentile(2, 0.99)));
}

TEST(Latency, UnknownFlowIsZero) {
  Fx fx;
  LatencyMeter meter(*fx.net);
  EXPECT_EQ(meter.samples(9), 0u);
  EXPECT_EQ(meter.mean(9), Time::zero());
  EXPECT_EQ(meter.percentile(9, 0.99), Time::zero());
}

}  // namespace
}  // namespace dcdl::stats
