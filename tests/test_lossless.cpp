// Lossless-network invariants, checked across every canonical scenario
// (parameterized): PFC must prevent buffer-overflow drops, and packets
// must be conserved — everything sent is delivered, TTL-dropped, or (in a
// deadlock) trapped in switch buffers.
#include <gtest/gtest.h>

#include <numeric>

#include "dcdl/device/host.hpp"
#include "dcdl/analysis/bdg.hpp"
#include "dcdl/scenarios/scenario.hpp"

namespace dcdl::scenarios {
namespace {

using namespace dcdl::literals;

enum class Which {
  kFourSwitch2,
  kFourSwitch3,
  kFourSwitchLimited,
  kRing,
  kLoopSub,
  kLoopSuper,
  kIncast,
  kTransient,
};

const char* name_of(Which w) {
  switch (w) {
    case Which::kFourSwitch2: return "FourSwitchTwoFlows";
    case Which::kFourSwitch3: return "FourSwitchThreeFlows";
    case Which::kFourSwitchLimited: return "FourSwitchRateLimited";
    case Which::kRing: return "RingDeadlock";
    case Which::kLoopSub: return "LoopSubcritical";
    case Which::kLoopSuper: return "LoopSupercritical";
    case Which::kIncast: return "Incast";
    case Which::kTransient: return "TransientLoop";
  }
  return "?";
}

Scenario build(Which w) {
  switch (w) {
    case Which::kFourSwitch2:
      return make_four_switch(FourSwitchParams{});
    case Which::kFourSwitch3: {
      FourSwitchParams p;
      p.with_flow3 = true;
      return make_four_switch(p);
    }
    case Which::kFourSwitchLimited: {
      FourSwitchParams p;
      p.with_flow3 = true;
      p.flow3_limit = Rate::gbps(2);
      return make_four_switch(p);
    }
    case Which::kRing:
      return make_ring_deadlock(RingDeadlockParams{});
    case Which::kLoopSub: {
      RoutingLoopParams p;
      p.inject = Rate::gbps(4);
      return make_routing_loop(p);
    }
    case Which::kLoopSuper: {
      RoutingLoopParams p;
      p.inject = Rate::gbps(9);
      return make_routing_loop(p);
    }
    case Which::kIncast: {
      IncastParams p;
      p.num_senders = 6;
      return make_incast(p);
    }
    case Which::kTransient: {
      TransientLoopParams p;
      p.inject = Rate::gbps(10);
      return make_transient_loop(p);
    }
  }
  return make_four_switch(FourSwitchParams{});
}

class LosslessInvariants : public testing::TestWithParam<Which> {};

TEST_P(LosslessInvariants, NoOverflowAndPacketsConserved) {
  Scenario s = build(GetParam());
  std::uint64_t ttl_drops = 0;
  std::uint64_t noroute_drops = 0;
  s.net->trace().dropped = [&](Time, const Packet&, NodeId, DropReason r) {
    if (r == DropReason::kTtlExpired) ++ttl_drops;
    if (r == DropReason::kNoRoute) ++noroute_drops;
  };
  s.sim->run_until(8_ms);
  const auto drain = analysis::stop_and_drain(*s.net, 20_ms);

  // Invariant 1: PFC means zero buffer-overflow drops, ever.
  EXPECT_EQ(s.net->drops(DropReason::kBufferOverflow), 0u);

  // Invariant 2: packet conservation. After the drain, nothing is in
  // flight, so sent == delivered + dropped + trapped.
  std::uint64_t sent = 0, delivered = 0;
  std::uint32_t pkt_bytes = 0;
  for (const FlowSpec& f : s.flows) {
    sent += s.net->host_at(f.src_host).sent_packets(f.id);
    delivered += s.net->host_at(f.dst_host).delivered_packets(f.id);
    pkt_bytes = f.packet_bytes;
  }
  const std::uint64_t trapped_packets =
      static_cast<std::uint64_t>(drain.trapped_bytes) / pkt_bytes;
  EXPECT_EQ(sent, delivered + ttl_drops + noroute_drops + trapped_packets)
      << name_of(GetParam());

  // Invariant 3: trapped bytes are whole packets.
  EXPECT_EQ(static_cast<std::uint64_t>(drain.trapped_bytes) % pkt_bytes, 0u);

  // Invariant 4: deadlock implies trapped bytes and vice versa.
  EXPECT_EQ(drain.deadlocked, drain.trapped_bytes > 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, LosslessInvariants,
    testing::Values(Which::kFourSwitch2, Which::kFourSwitch3,
                    Which::kFourSwitchLimited, Which::kRing, Which::kLoopSub,
                    Which::kLoopSuper, Which::kIncast, Which::kTransient),
    [](const testing::TestParamInfo<Which>& info) {
      return name_of(info.param);
    });

// Deadlock implies cyclic buffer dependency (the necessary condition):
// every scenario that deadlocks must have a CBD cycle in its analysis.
class NecessaryCondition : public testing::TestWithParam<Which> {};

TEST_P(NecessaryCondition, DeadlockImpliesCyclicBufferDependency) {
  Scenario s = build(GetParam());
  const auto bdg = analysis::BufferDependencyGraph::build(*s.net, s.flows);
  const bool had_cycle_initially = bdg.has_cycle();
  s.sim->run_until(8_ms);
  const auto drain = analysis::stop_and_drain(*s.net, 20_ms);
  if (drain.deadlocked) {
    EXPECT_TRUE(had_cycle_initially) << name_of(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, NecessaryCondition,
    testing::Values(Which::kFourSwitch2, Which::kFourSwitch3,
                    Which::kFourSwitchLimited, Which::kRing, Which::kLoopSub,
                    Which::kLoopSuper, Which::kIncast),
    [](const testing::TestParamInfo<Which>& info) {
      return name_of(info.param);
    });

}  // namespace
}  // namespace dcdl::scenarios
