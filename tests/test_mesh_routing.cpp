// Turn-model routing on 2D meshes: dimension-order is deadlock-free by
// construction; mixing XY and YX re-introduces the forbidden turns and
// deadlocks under adversarial traffic.
#include <gtest/gtest.h>

#include "dcdl/analysis/bdg.hpp"
#include "dcdl/analysis/deadlock.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/routing/mesh_routing.hpp"
#include "dcdl/topo/generators.hpp"

namespace dcdl::routing {
namespace {

using namespace dcdl::literals;
using namespace dcdl::topo;

std::vector<FlowSpec> all_pairs(const Topology& topo) {
  std::vector<FlowSpec> flows;
  FlowId id = 1;
  for (const NodeId a : topo.hosts()) {
    for (const NodeId b : topo.hosts()) {
      if (a == b) continue;
      FlowSpec f;
      f.id = id++;
      f.src_host = a;
      f.dst_host = b;
      flows.push_back(f);
    }
  }
  return flows;
}

bool walk_reaches(const Network& net, NodeId src, NodeId dst) {
  NodeId cur = net.topo().peer(src, 0).peer_node;
  for (int i = 0; i < 64; ++i) {
    if (cur == dst) return true;
    if (!net.topo().is_switch(cur)) return false;
    const auto eg = net.switch_at(cur).routes().lookup(0, dst);
    if (!eg) return false;
    cur = net.topo().peer(cur, *eg).peer_node;
  }
  return false;
}

TEST(MeshRouting, XyReachesAllPairsMinimally) {
  Simulator sim;
  const MeshTopo mesh = make_mesh(4, 4);
  Topology topo = mesh.topo;
  Network net(sim, topo, NetConfig{});
  install_xy_routing(net, mesh);
  for (const NodeId a : topo.hosts()) {
    for (const NodeId b : topo.hosts()) {
      if (a != b) EXPECT_TRUE(walk_reaches(net, a, b));
    }
  }
}

TEST(MeshRouting, XyAndYxAreDeadlockFree) {
  for (const bool xy : {true, false}) {
    Simulator sim;
    const MeshTopo mesh = make_mesh(4, 4);
    Topology topo = mesh.topo;
    Network net(sim, topo, NetConfig{});
    if (xy) {
      install_xy_routing(net, mesh);
    } else {
      install_yx_routing(net, mesh);
    }
    EXPECT_TRUE(
        analysis::routing_deadlock_free(net, all_pairs(topo)))
        << (xy ? "XY" : "YX");
  }
}

TEST(MeshRouting, MixedTurnSetsHaveCyclicDependencies) {
  Simulator sim;
  const MeshTopo mesh = make_mesh(4, 4);
  Topology topo = mesh.topo;
  Network net(sim, topo, NetConfig{});
  install_mixed_xy_yx(net, mesh, /*seed=*/3);
  EXPECT_FALSE(analysis::routing_deadlock_free(net, all_pairs(topo)));
  // Still loop-free per destination (each dst is routed consistently).
  for (const NodeId dst : topo.hosts()) {
    EXPECT_FALSE(find_forwarding_loop(net, dst).has_value());
  }
}

// Adversarial diagonal traffic: four greedy flows between opposite
// corners. With the cyclic turn combination (diagonals XY, anti-diagonals
// YX) the paths chain top->right->bottom->left edges into a dependency
// ring; XY-only keeps the dependency graph acyclic.
void add_diagonal_flows(Network& net, const MeshTopo& mesh) {
  const std::size_t R = static_cast<std::size_t>(mesh.rows - 1);
  const std::size_t C = static_cast<std::size_t>(mesh.cols - 1);
  const NodeId tl = mesh.host[0][0], tr = mesh.host[0][C];
  const NodeId br = mesh.host[R][C], bl = mesh.host[R][0];
  const std::pair<NodeId, NodeId> pairs[4] = {
      {tl, br}, {br, tl}, {tr, bl}, {bl, tr}};
  for (int i = 0; i < 4; ++i) {
    FlowSpec f;
    f.id = static_cast<FlowId>(i + 1);
    f.src_host = pairs[i].first;
    f.dst_host = pairs[i].second;
    f.packet_bytes = 1000;
    f.ttl = 64;
    net.host_at(f.src_host).add_flow(f);
  }
}

// The known-cyclic combination: corner destinations on the main diagonal
// route row-first, the others column-first. Everything else XY.
void install_cyclic_turn_combo(Network& net, const MeshTopo& mesh) {
  install_xy_routing(net, mesh);
  const int R = mesh.rows - 1, C = mesh.cols - 1;
  install_mesh_route(net, mesh, R, C, /*xy=*/true);   // top -> right
  install_mesh_route(net, mesh, 0, 0, /*xy=*/true);   // bottom -> left
  install_mesh_route(net, mesh, R, 0, /*xy=*/false);  // right -> bottom
  install_mesh_route(net, mesh, 0, C, /*xy=*/false);  // left -> top
}

TEST(MeshRouting, XySurvivesAdversarialDiagonalTraffic) {
  Simulator sim;
  const MeshTopo mesh = make_mesh(3, 3);
  Topology topo = mesh.topo;
  Network net(sim, topo, NetConfig{});
  install_xy_routing(net, mesh);
  add_diagonal_flows(net, mesh);
  sim.run_until(10_ms);
  EXPECT_FALSE(analysis::stop_and_drain(net, 10_ms).deadlocked);
}

TEST(MeshRouting, CyclicTurnComboIsCyclicInTheBdg) {
  Simulator sim;
  const MeshTopo mesh = make_mesh(3, 3);
  Topology topo = mesh.topo;
  Network net(sim, topo, NetConfig{});
  install_cyclic_turn_combo(net, mesh);
  std::vector<FlowSpec> flows;
  const std::size_t R = static_cast<std::size_t>(mesh.rows - 1);
  const std::size_t C = static_cast<std::size_t>(mesh.cols - 1);
  const NodeId tl = mesh.host[0][0], tr = mesh.host[0][C];
  const NodeId br = mesh.host[R][C], bl = mesh.host[R][0];
  const std::pair<NodeId, NodeId> pairs[4] = {
      {tl, br}, {br, tl}, {tr, bl}, {bl, tr}};
  for (int i = 0; i < 4; ++i) {
    FlowSpec f;
    f.id = static_cast<FlowId>(i + 1);
    f.src_host = pairs[i].first;
    f.dst_host = pairs[i].second;
    flows.push_back(f);
  }
  EXPECT_FALSE(analysis::routing_deadlock_free(net, flows));
}

TEST(MeshRouting, CyclicTurnComboDeadlocksUnderDiagonalTraffic) {
  Simulator sim;
  const MeshTopo mesh = make_mesh(3, 3);
  Topology topo = mesh.topo;
  NetConfig cfg;
  cfg.tx_jitter = Time{10'000};
  Network net(sim, topo, cfg);
  install_cyclic_turn_combo(net, mesh);
  add_diagonal_flows(net, mesh);
  sim.run_until(20_ms);
  EXPECT_TRUE(analysis::stop_and_drain(net, 10_ms).deadlocked);
}

}  // namespace
}  // namespace dcdl::routing
