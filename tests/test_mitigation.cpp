// Mitigation mechanisms of §4: class mappers, threshold policies, rate
// limiting, and DCQCN's effect on PFC generation.
#include <gtest/gtest.h>

#include "dcdl/device/switch.hpp"
#include "dcdl/mitigation/class_policy.hpp"
#include "dcdl/mitigation/thresholds.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/stats/pause_log.hpp"
#include "dcdl/topo/generators.hpp"

namespace dcdl::mitigation {
namespace {

using namespace dcdl::literals;
using namespace dcdl::scenarios;
using namespace dcdl::topo;

TEST(TtlClassMapper, BandsAndClamps) {
  const auto mapper = ttl_class_mapper(/*band=*/8, /*num_classes=*/4);
  Packet pkt;
  pkt.ttl = 0;
  EXPECT_EQ(mapper(pkt, 0), 0);
  pkt.ttl = 7;
  EXPECT_EQ(mapper(pkt, 0), 0);
  pkt.ttl = 8;
  EXPECT_EQ(mapper(pkt, 0), 1);
  pkt.ttl = 16;
  EXPECT_EQ(mapper(pkt, 0), 2);
  pkt.ttl = 255;
  EXPECT_EQ(mapper(pkt, 0), 3);  // clamped to the top class
}

TEST(TtlClassMapper, ClassNeverIncreasesAlongAPath) {
  const auto mapper = ttl_class_mapper(4, 8);
  Packet pkt;
  ClassId prev = 7;
  for (int ttl = 30; ttl >= 0; --ttl) {
    pkt.ttl = static_cast<std::uint8_t>(ttl);
    const ClassId c = mapper(pkt, 0);
    EXPECT_LE(c, prev);
    prev = c;
  }
}

TEST(HopClassMapper, IncrementsWithHopsAndClamps) {
  const auto mapper = hop_class_mapper(3);
  Packet pkt;
  pkt.hops = 0;
  EXPECT_EQ(mapper(pkt, 0), 0);
  pkt.hops = 1;
  EXPECT_EQ(mapper(pkt, 0), 1);
  pkt.hops = 2;
  EXPECT_EQ(mapper(pkt, 0), 2);
  pkt.hops = 9;
  EXPECT_EQ(mapper(pkt, 0), 2);
}

TEST(HopClasses, PreventRingDeadlockWithEnoughClasses) {
  RingDeadlockParams p;
  p.num_classes = 4;
  p.hop_classes = true;
  Scenario s = make_ring_deadlock(p);
  const RunSummary r = run_and_check(s, 10_ms, 10_ms);
  EXPECT_FALSE(r.deadlocked);
}

TEST(HopClasses, SingleClassControlDeadlocks) {
  RingDeadlockParams p;  // defaults: 1 class, no mapper
  Scenario s = make_ring_deadlock(p);
  const RunSummary r = run_and_check(s, 10_ms, 10_ms);
  EXPECT_TRUE(r.deadlocked);
}

TEST(TtlClasses, EffectiveTtlWithinLoopLengthPreventsDeadlock) {
  // §4: banding TTLs into classes bounds the *effective* TTL per class.
  // With TTL 16, 8 classes, and band 2 the top (clamped) class covers TTL
  // 14..16 — effectively the loop length — so no class can deadlock even
  // under a 30 Gbps flood (6x the unmitigated threshold).
  RoutingLoopParams p;
  p.ttl = 16;
  p.inject = Rate::gbps(30);
  p.num_classes = 8;
  p.ttl_class_band = 2;
  Scenario s = make_routing_loop(p);
  EXPECT_FALSE(run_and_check(s, 6_ms, 15_ms).deadlocked);
}

TEST(TtlClasses, WideBandLeavesTopClassVulnerable) {
  // Band 4 over 8 classes clamps TTL 12..16 into one class: effective TTL
  // 5 > loop length 2, and — because the classes share the wire — the
  // per-class threshold is *not* raised enough (the paper's "worst-case
  // scenarios" caveat). A 10 Gbps injection still deadlocks.
  RoutingLoopParams p;
  p.ttl = 16;
  p.inject = Rate::gbps(10);
  p.num_classes = 8;
  p.ttl_class_band = 4;
  Scenario s = make_routing_loop(p);
  EXPECT_TRUE(run_and_check(s, 6_ms, 15_ms).deadlocked);
}

TEST(RateLimiting, LoopInjectionShapedBelowThresholdSurvives) {
  // §4 "Rate limiting": shape the ingress that feeds the loop below
  // n*B/TTL. The host injects greedily; the switch shaper enforces safety.
  RoutingLoopParams p;
  p.inject = Rate::zero();  // greedy host
  Scenario s = make_routing_loop(p);
  // Shape the host-facing ingress at switch 0 to 4 Gbps (< 5 Gbps).
  const NodeId s0 = s.node("S0");
  const NodeId h0 = s.node("H0");
  const auto port = s.topo->port_towards(s0, h0);
  ASSERT_TRUE(port.has_value());
  s.net->switch_at(s0).set_ingress_shaper(*port, Rate::gbps(4), 1000);
  const RunSummary r = run_and_check(s, 6_ms, 20_ms);
  EXPECT_FALSE(r.deadlocked);
}

TEST(Thresholds, DirectionalPolicyAppliesPerPortValues) {
  // Leaf-spine: spine ports facing leaves (downstream) get the small
  // threshold. Verify via pause behaviour: a queue pauses once its counter
  // crosses the configured Xoff.
  IncastParams ip;
  ip.num_senders = 4;
  Scenario s = make_incast(ip);
  apply_directional_thresholds(*s.net, /*xoff_down=*/10 * 1024,
                               /*xoff_up=*/80 * 1024, /*hysteresis=*/2000);
  stats::PauseEventLog log(*s.net);
  // Run and check that pauses at the receiver leaf's host-facing... the
  // receiving leaf ingress from spines is "downstream-facing" on the
  // spine side. We simply check the network still works losslessly and
  // pauses happen.
  s.sim->run_until(5_ms);
  EXPECT_GT(log.events().size(), 0u);
  EXPECT_EQ(s.net->drops(DropReason::kBufferOverflow), 0u);
}

TEST(Thresholds, LargerThresholdsAbsorbBursts) {
  // §4: "use switches with larger threshold values at the higher tiers so
  // that they can absorb small bursts instead of generating PFC pause
  // frames." Bursty senders (on/off, ~50 KB bursts) against 8 KB vs
  // 160 KB thresholds: the large thresholds swallow the bursts.
  std::uint64_t pauses_small = 0, pauses_large = 0;
  for (const std::int64_t xoff :
       {std::int64_t{8} * 1024, std::int64_t{160} * 1024}) {
    Simulator sim;
    const LeafSpineTopo ls = make_leaf_spine(2, 2, 4);
    Topology topo = ls.topo;
    NetConfig cfg;
    Network net(sim, topo, cfg);
    dcdl::routing::install_shortest_paths(net);
    apply_tier_thresholds(net, {xoff, xoff, xoff}, 2000);
    for (int i = 0; i < 4; ++i) {
      FlowSpec f;
      f.id = static_cast<FlowId>(i + 1);
      f.src_host = ls.hosts[1][static_cast<std::size_t>(i)];
      f.dst_host = ls.hosts[0][0];
      f.packet_bytes = 1000;
      net.host_at(f.src_host).add_flow(
          f, std::make_unique<OnOffPacer>(10_us, 90_us,
                                          /*seed=*/100 + i,
                                          /*randomized=*/true));
    }
    stats::PauseEventLog log(net);
    sim.run_until(10_ms);
    std::uint64_t pauses = 0;
    for (const auto& e : log.events()) {
      if (e.paused) ++pauses;
    }
    (xoff == 8 * 1024 ? pauses_small : pauses_large) = pauses;
    EXPECT_EQ(net.drops(DropReason::kBufferOverflow), 0u);
  }
  EXPECT_GT(pauses_small, 10 * (pauses_large + 1));
}

TEST(Thresholds, ClassPolicyRejectsShortVector) {
  IncastParams ip;
  Scenario s = make_incast(ip);
  EXPECT_DEATH(apply_class_thresholds(*s.net, {}, 2000), "precondition");
}

TEST(Dcqcn, ReducesPauseGeneration) {
  // §4 "Preventing PFC from being generated": DCQCN cuts PFC dramatically
  // but (paper's caveat) cannot eliminate it in general.
  std::uint64_t pauses_plain = 0, pauses_dcqcn = 0;
  for (const bool dcqcn : {false, true}) {
    IncastParams ip;
    ip.num_senders = 8;
    ip.ecn = dcqcn;
    ip.dcqcn = dcqcn;
    Scenario s = make_incast(ip);
    stats::PauseEventLog log(*s.net);
    s.sim->run_until(20_ms);
    std::uint64_t pauses = 0;
    for (const auto& e : log.events()) {
      if (e.paused) ++pauses;
    }
    (dcqcn ? pauses_dcqcn : pauses_plain) = pauses;
    EXPECT_EQ(s.net->drops(DropReason::kBufferOverflow), 0u);
  }
  EXPECT_LT(pauses_dcqcn * 10, pauses_plain)
      << "DCQCN should cut pause generation by >10x in a steady incast";
}

TEST(Dcqcn, PhantomQueueMarksEarlier) {
  // A phantom queue draining at 95% of line rate generates congestion
  // signals sooner, so senders back off before the real queue fills:
  // fewer or equal pauses than real-queue marking.
  std::uint64_t pauses_real = 0, pauses_phantom = 0;
  for (const double phantom : {1.0, 0.95}) {
    IncastParams ip;
    ip.num_senders = 8;
    ip.ecn = true;
    ip.dcqcn = true;
    ip.phantom_speed_fraction = phantom;
    Scenario s = make_incast(ip);
    stats::PauseEventLog log(*s.net);
    s.sim->run_until(20_ms);
    std::uint64_t pauses = 0;
    for (const auto& e : log.events()) {
      if (e.paused) ++pauses;
    }
    (phantom < 1.0 ? pauses_phantom : pauses_real) = pauses;
  }
  EXPECT_LE(pauses_phantom, pauses_real);
}

}  // namespace
}  // namespace dcdl::mitigation
