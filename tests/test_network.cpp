// Wire-level semantics of Network: serialization + propagation timing for
// data and PFC frames, CNP feedback path, trace hook behaviour.
#include <gtest/gtest.h>

#include "dcdl/device/host.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/stats/hooks.hpp"

namespace dcdl {
namespace {

using namespace dcdl::literals;

struct Wire {
  Simulator sim;
  Topology topo;
  NodeId s, h0, h1;
  std::unique_ptr<Network> net;

  explicit Wire(NetConfig cfg = {}) {
    s = topo.add_switch("S");
    h0 = topo.add_host("h0");
    h1 = topo.add_host("h1");
    topo.add_link(s, h0, Rate::gbps(40), 3_us);
    topo.add_link(s, h1, Rate::gbps(40), 3_us);
    net = std::make_unique<Network>(sim, topo, cfg);
    routing::install_shortest_paths(*net);
  }
};

TEST(NetworkWire, DataLatencyIsSerializationPlusPropagation) {
  Wire fx;
  FlowSpec f;
  f.id = 1;
  f.src_host = fx.h0;
  f.dst_host = fx.h1;
  f.packet_bytes = 1000;  // 200 ns at 40G
  fx.net->host_at(fx.h0).add_flow(
      f, std::make_unique<TokenBucketPacer>(Rate::mbps(100), 1000));
  Time first_delivery = Time::zero();
  fx.net->trace().delivered = [&](Time t, const Packet&) {
    if (first_delivery == Time::zero()) first_delivery = t;
  };
  fx.sim.run_until(100_us);
  // Two hops: host->switch and switch->host, each 200 ns + 3 us.
  EXPECT_EQ(first_delivery, Time{2 * (200'000 + 3'000'000)});
}

TEST(NetworkWire, PfcFrameLatency) {
  // A PAUSE crosses with 64-byte serialization (12.8 ns) + propagation.
  Wire fx;
  Time sent_at = Time::zero();
  Time received_at = Time::zero();
  fx.sim.schedule_at(10_us, [&] {
    sent_at = fx.sim.now();
    fx.net->send_pfc(fx.s, 0, 0, true);  // to h0
  });
  // Hook: the host's pause state flips when the frame lands; observe by
  // polling.
  fx.sim.schedule_at(10_us + 3_us + 13_ns, [&] {
    if (fx.net->host_at(fx.h0).egress_paused(0)) received_at = fx.sim.now();
  });
  fx.sim.run_until(20_us);
  EXPECT_EQ(sent_at, 10_us);
  EXPECT_EQ(received_at, 10_us + 3_us + 13_ns);
}

TEST(NetworkWire, CnpFeedbackDelay) {
  NetConfig cfg;
  cfg.cnp_feedback_delay = 7_us;
  Wire fx(cfg);
  FlowSpec f;
  f.id = 42;
  f.src_host = fx.h0;
  f.dst_host = fx.h1;
  fx.net->host_at(fx.h0).add_flow(
      f, std::make_unique<TokenBucketPacer>(Rate::gbps(1), 1000));
  Time cnp_at = Time::zero();
  fx.net->trace().cnp = [&](Time t, FlowId flow) {
    EXPECT_EQ(flow, 42u);
    cnp_at = t;
  };
  fx.sim.schedule_at(5_us, [&] { fx.net->send_cnp(fx.h1, 42, fx.h0); });
  fx.sim.run_until(20_us);
  EXPECT_EQ(cnp_at, 12_us);
}

TEST(NetworkWire, TotalQueuedCountsOnlySwitchBuffers) {
  Wire fx;
  EXPECT_EQ(fx.net->total_queued_bytes(), 0);
  FlowSpec f;
  f.id = 1;
  f.src_host = fx.h0;
  f.dst_host = fx.h1;
  fx.net->host_at(fx.h0).add_flow(f);
  fx.sim.run_until(100_us);
  // Uncontended path: at most a packet or two resident at the switch.
  EXPECT_LE(fx.net->total_queued_bytes(), 3000);
}

TEST(NetworkWire, AppendHookChainsObservers) {
  Wire fx;
  FlowSpec f;
  f.id = 1;
  f.src_host = fx.h0;
  f.dst_host = fx.h1;
  fx.net->host_at(fx.h0).add_flow(
      f, std::make_unique<TokenBucketPacer>(Rate::gbps(1), 1000));
  int first = 0, second = 0;
  stats::append_hook<Time, const Packet&>(fx.net->trace().delivered,
                                          [&](Time, const Packet&) { ++first; });
  stats::append_hook<Time, const Packet&>(
      fx.net->trace().delivered, [&](Time, const Packet&) { ++second; });
  fx.sim.run_until(100_us);
  EXPECT_GT(first, 0);
  EXPECT_EQ(first, second);
}

TEST(NetworkWire, DeviceAccessorsCheckKind) {
  Wire fx;
  EXPECT_DEATH(fx.net->switch_at(fx.h0), "precondition");
  EXPECT_DEATH(fx.net->host_at(fx.s), "precondition");
}

TEST(NetworkWire, PacketIdsAreUnique) {
  Wire fx;
  for (const FlowId id : {1u, 2u}) {
    FlowSpec f;
    f.id = id;
    f.src_host = fx.h0;
    f.dst_host = fx.h1;
    fx.net->host_at(fx.h0).add_flow(
        f, std::make_unique<TokenBucketPacer>(Rate::gbps(2), 1000));
  }
  std::set<std::uint64_t> ids;
  bool dup = false;
  fx.net->trace().delivered = [&](Time, const Packet& pkt) {
    dup |= !ids.insert(pkt.id).second;
  };
  fx.sim.run_until(200_us);
  EXPECT_FALSE(dup);
  EXPECT_GT(ids.size(), 50u);
}

}  // namespace
}  // namespace dcdl
