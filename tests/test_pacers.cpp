// Pacing models: token bucket, Poisson, on/off, and the DCQCN-like
// congestion-control state machine.
#include <gtest/gtest.h>

#include "dcdl/mitigation/dcqcn.hpp"
#include "dcdl/traffic/flow.hpp"

namespace dcdl {
namespace {

using namespace dcdl::literals;

TEST(TokenBucket, AllowsBurstThenPaces) {
  TokenBucketPacer p(Rate::gbps(8), 2000);
  // Bucket starts full: two 1000-byte packets immediately.
  EXPECT_EQ(p.ready_at(Time::zero(), 1000), Time::zero());
  p.on_sent(Time::zero(), 1000);
  EXPECT_EQ(p.ready_at(Time::zero(), 1000), Time::zero());
  p.on_sent(Time::zero(), 1000);
  // Third packet waits for 1000 bytes at 8 Gbps = 1 us.
  const Time t = p.ready_at(Time::zero(), 1000);
  EXPECT_NEAR(t.us(), 1.0, 0.001);
}

TEST(TokenBucket, LongRunRateIsExact) {
  TokenBucketPacer p(Rate::gbps(8), 1000);
  Time now = Time::zero();
  std::int64_t sent = 0;
  while (now < 1_ms) {
    now = p.ready_at(now, 1000);
    p.on_sent(now, 1000);
    sent += 1000;
  }
  // 8 Gbps for 1 ms = 1 MB.
  EXPECT_NEAR(static_cast<double>(sent), 1e6, 5e3);
}

TEST(TokenBucket, SetRateTakesEffect) {
  TokenBucketPacer p(Rate::gbps(8), 1000);
  p.on_sent(Time::zero(), 1000);
  p.set_rate(Time::zero(), Rate::gbps(2));
  const Time t = p.ready_at(Time::zero(), 1000);
  EXPECT_NEAR(t.us(), 4.0, 0.01);  // 1000 B at 2 Gbps
}

TEST(Poisson, MeanRateIsRespected) {
  PoissonPacer p(Rate::gbps(10), 1000, /*seed=*/1);
  Time now = Time::zero();
  std::int64_t sent = 0;
  while (now < 10_ms) {
    now = p.ready_at(now, 1000);
    p.on_sent(now, 1000);
    sent += 1000;
  }
  EXPECT_NEAR(static_cast<double>(sent) * 8 / 10e-3, 10e9, 0.5e9);
}

TEST(Poisson, GapsAreVariable) {
  PoissonPacer p(Rate::gbps(10), 1000, 2);
  Time now = Time::zero();
  Time prev_gap = Time::zero();
  bool vary = false;
  Time prev = Time::zero();
  for (int i = 0; i < 100; ++i) {
    now = p.ready_at(now, 1000);
    p.on_sent(now, 1000);
    const Time gap = now - prev;
    if (i > 1 && gap != prev_gap) vary = true;
    prev_gap = gap;
    prev = now;
  }
  EXPECT_TRUE(vary);
}

TEST(OnOff, DutyCycleBoundsThroughput) {
  OnOffPacer p(100_us, 100_us, /*seed=*/1);
  int ready_now = 0, deferred = 0;
  for (int i = 0; i < 1000; ++i) {
    const Time now = Time{static_cast<std::int64_t>(i) * 1'000'000};  // each us
    if (p.ready_at(now, 1000) == now) {
      ++ready_now;
    } else {
      ++deferred;
    }
  }
  // 50% duty cycle.
  EXPECT_NEAR(ready_now, 500, 30);
  EXPECT_NEAR(deferred, 500, 30);
}

TEST(OnOff, DeferredReadyPointsToNextOnPeriod) {
  OnOffPacer p(100_us, 50_us, 1);
  // At t=120us (inside the off period) the next on period starts at 150us.
  const Time t = p.ready_at(120_us, 1000);
  EXPECT_EQ(t, 150_us);
}

TEST(Dcqcn, StartsAtLineRate) {
  mitigation::DcqcnPacer p(mitigation::DcqcnParams{});
  EXPECT_EQ(p.current_rate()->bps(), Rate::gbps(40).bps());
}

TEST(Dcqcn, CnpCutsRateMultiplicatively) {
  mitigation::DcqcnPacer p(mitigation::DcqcnParams{});
  p.on_cnp(1_us);
  // alpha starts at 1: first CNP halves the rate.
  EXPECT_NEAR(p.current_rate()->as_gbps(), 20.0, 0.1);
  p.on_cnp(2_us);
  EXPECT_LT(p.current_rate()->as_gbps(), 20.0);
  EXPECT_GT(p.cnp_count(), 0u);
}

TEST(Dcqcn, RecoversTowardTargetAfterQuietPeriod) {
  mitigation::DcqcnPacer p(mitigation::DcqcnParams{});
  p.on_cnp(1_us);
  const double cut = p.current_rate()->as_gbps();
  // 10 increase periods (55 us each) with no CNPs: fast recovery halves the
  // distance to the pre-cut rate each period.
  p.ready_at(1_us + 10 * 55_us, 1000);
  EXPECT_GT(p.current_rate()->as_gbps(), cut + 5.0);
}

TEST(Dcqcn, AlphaDecaysWithoutCongestion) {
  mitigation::DcqcnPacer p(mitigation::DcqcnParams{});
  p.on_cnp(1_us);
  const double a0 = p.alpha();
  p.ready_at(1_us + 20 * 55_us, 1000);
  EXPECT_LT(p.alpha(), a0 * 0.95);
}

TEST(Dcqcn, NeverBelowMinRate) {
  mitigation::DcqcnParams params;
  params.min_rate = Rate::mbps(100);
  mitigation::DcqcnPacer p(params);
  for (int i = 1; i <= 100; ++i) {
    p.on_cnp(Time{static_cast<std::int64_t>(i) * 1'000'000});
  }
  EXPECT_GE(p.current_rate()->bps(), Rate::mbps(100).bps());
}

TEST(Dcqcn, ByteCounterAcceleratesRecovery) {
  // Two pacers cut by a CNP, then sending heavily: the one with a small
  // byte counter racks up increase events per byte and recovers faster
  // than timer-only recovery.
  mitigation::DcqcnParams fast;
  fast.byte_counter = 64 * 1024;
  mitigation::DcqcnParams slow;  // default 10 MB: effectively timer-only
  mitigation::DcqcnPacer pf(fast), ps(slow);
  pf.on_cnp(1_us);
  ps.on_cnp(1_us);
  Time now = 1_us;
  for (int i = 0; i < 60; ++i) {
    now = now + Time{1'000'000};  // 60 us: about one timer period
    pf.on_sent(now, 4000);
    ps.on_sent(now, 4000);
  }
  // Slow: one timer event (20 -> 30 Gbps). Fast: + ~3 byte-counter events.
  EXPECT_GT(pf.current_rate()->as_gbps(), ps.current_rate()->as_gbps() + 3.0);
}

TEST(Dcqcn, CnpResetsByteCounterProgress) {
  mitigation::DcqcnParams p;
  p.byte_counter = 10'000;
  mitigation::DcqcnPacer pacer(p);
  pacer.on_cnp(1_us);
  const double after_cut = pacer.current_rate()->as_gbps();
  // 9 KB sent: just under one byte-counter event...
  pacer.on_sent(2_us, 9000);
  EXPECT_NEAR(pacer.current_rate()->as_gbps(), after_cut, 0.01);
  // ...a CNP resets the progress, so another 9 KB still triggers nothing.
  pacer.on_cnp(3_us);
  pacer.on_sent(4_us, 9000);
  const double now_rate = pacer.current_rate()->as_gbps();
  pacer.on_sent(5_us, 2000);  // crosses 10 KB since the last CNP
  EXPECT_GT(pacer.current_rate()->as_gbps(), now_rate);
}

TEST(Dcqcn, PacesAtCurrentRate) {
  mitigation::DcqcnPacer p(mitigation::DcqcnParams{});
  p.on_cnp(1_us);  // 20 Gbps
  Time now = 2_us;
  p.on_sent(now, 1000);
  const Time next = p.ready_at(now, 1000);
  // 1000 B at ~20 Gbps = ~0.4 us.
  EXPECT_NEAR((next - now).us(), 0.4, 0.05);
}

}  // namespace
}  // namespace dcdl
