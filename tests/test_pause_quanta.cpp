// 802.1Qbb pause-quanta semantics: with refresh (the real-switch default)
// a paused state — and therefore a deadlock — persists indefinitely; with
// quanta but no refresh, pauses lapse, deadlocks self-heal, and the
// lossless guarantee is lost (overflow drops appear under pressure).
#include <gtest/gtest.h>

#include "dcdl/analysis/deadlock.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/stats/pause_log.hpp"
#include "dcdl/topo/generators.hpp"

namespace dcdl {
namespace {

using namespace dcdl::literals;
using namespace dcdl::scenarios;
using namespace dcdl::topo;

constexpr Time kQuanta = Time{838'000'000};  // 65535 x 512 bit @ 40G ~ 838 us

TEST(PauseQuanta, RefreshKeepsDeadlockPermanent) {
  // Build the fig-4 deadlock on a network with realistic quanta + refresh:
  // the deadlock must persist well past many quanta lifetimes.
  Simulator sim;
  Topology topo;
  const NodeId A = topo.add_switch("A"), B = topo.add_switch("B");
  const NodeId C = topo.add_switch("C"), D = topo.add_switch("D");
  for (const auto [x, y] : {std::pair{A, B}, {B, C}, {C, D}, {D, A}}) {
    topo.add_link(x, y, Rate::gbps(40), 2_us);
  }
  const NodeId hA = topo.add_host("hA"), hB = topo.add_host("hB");
  const NodeId hC = topo.add_host("hC"), hD = topo.add_host("hD");
  const NodeId hB3 = topo.add_host("hB3"), hC3 = topo.add_host("hC3");
  for (const auto [sw, h] : {std::pair{A, hA}, {B, hB}, {C, hC}, {D, hD},
                             {B, hB3}, {C, hC3}}) {
    topo.add_link(sw, h, Rate::gbps(40), 2_us);
  }
  NetConfig cfg;
  cfg.pfc.pause_quanta = kQuanta;
  cfg.pfc.pause_refresh = true;
  cfg.tx_jitter = Time{10'000};
  Network net(sim, topo, cfg);
  FlowSpec f1{1, hA, hD, 0, 1000, 64};
  FlowSpec f2{2, hC, hB, 0, 1000, 64};
  FlowSpec f3{3, hB3, hC3, 0, 1000, 64};
  routing::install_flow_path(net, 1, {hA, A, B, C, D, hD});
  routing::install_flow_path(net, 2, {hC, C, D, A, B, hB});
  routing::install_flow_path(net, 3, {hB3, B, C, hC3});
  net.host_at(hA).add_flow(f1);
  net.host_at(hC).add_flow(f2);
  net.host_at(hB3).add_flow(f3);

  sim.run_until(20_ms);  // ~24 quanta lifetimes
  const auto drain = analysis::stop_and_drain(net, 20_ms);
  EXPECT_TRUE(drain.deadlocked)
      << "refreshed pauses must keep the deadlock alive";
  EXPECT_EQ(net.drops(DropReason::kBufferOverflow), 0u);
}

TEST(PauseQuanta, HealthyCongestionNeverOutlivesTheQuanta) {
  // Under ordinary oversubscription, pause episodes last only the
  // hysteresis band plus the control RTT (~20 us here) — far below the
  // quanta — so expiry never fires and behaviour is identical to
  // persistent-pause mode: lossless, bottleneck-fair. This is why real
  // fabrics run quanta + refresh safely; only *wedged* pauses (deadlocks)
  // live long enough to lapse.
  Simulator sim;
  Topology topo;
  const NodeId s = topo.add_switch("S");
  const NodeId a = topo.add_host("a");
  const NodeId b = topo.add_host("b");
  const NodeId dst = topo.add_host("dst");
  topo.add_link(s, a, Rate::gbps(40), 1_us);
  topo.add_link(s, b, Rate::gbps(40), 1_us);
  topo.add_link(s, dst, Rate::gbps(10), 1_us);  // bottleneck
  NetConfig cfg;
  cfg.pfc.pause_quanta = Time{100'000'000};  // 100 us
  cfg.pfc.pause_refresh = false;
  Network net(sim, topo, cfg);
  routing::install_shortest_paths(net);
  for (const NodeId src : {a, b}) {
    FlowSpec f;
    f.id = src;
    f.src_host = src;
    f.dst_host = dst;
    f.packet_bytes = 1000;
    net.host_at(src).add_flow(f);
  }
  stats::PauseEventLog log(net);
  sim.run_until(10_ms);
  EXPECT_EQ(net.drops(DropReason::kBufferOverflow), 0u);
  // Every pause interval on the two sender-facing ports is far below the
  // quanta.
  for (const PortId port : {PortId{0}, PortId{1}}) {
    for (const auto& [begin, end] :
         log.intervals(stats::QueueKey{s, port, 0}, sim.now())) {
      EXPECT_LT(end - begin, Time{50'000'000});
    }
  }
  // Bottleneck-fair delivery at ~5 Gbps each.
  EXPECT_NEAR(static_cast<double>(net.host_at(dst).delivered_bytes(a)) * 8 /
                  10e-3 / 1e9,
              5.0, 0.5);
}

TEST(PauseQuanta, NoRefreshSelfHealsTheLoopDeadlock) {
  // The implicit reactive mechanism: without refresh, the routing-loop
  // deadlock dissolves when the quanta lapse and TTL drains the loop.
  Simulator sim;
  const RingTopo ring = make_ring(2, 1, LinkParams{Rate::gbps(40), 1_us});
  Topology topo = ring.topo;
  NetConfig cfg;
  cfg.pfc.pause_quanta = Time{100'000'000};
  cfg.pfc.pause_refresh = false;
  Network net(sim, topo, cfg);
  routing::install_loop_route(net, ring.hosts[1][0], ring.switches);
  FlowSpec f;
  f.id = 1;
  f.src_host = ring.hosts[0][0];
  f.dst_host = ring.hosts[1][0];
  f.packet_bytes = 1000;
  f.ttl = 16;
  net.host_at(f.src_host).add_flow(
      f, std::make_unique<TokenBucketPacer>(Rate::gbps(9), 1000));
  sim.run_until(10_ms);
  const auto drain = analysis::stop_and_drain(net, 20_ms);
  EXPECT_FALSE(drain.deadlocked)
      << "without refresh the pause cycle cannot persist";
}

TEST(PauseQuanta, ZeroQuantaMeansPersistentPause) {
  // Default behaviour is unchanged: the fig-4 deadlock persists.
  FourSwitchParams p;
  p.with_flow3 = true;
  Scenario s = make_four_switch(p);
  const RunSummary r = run_and_check(s, 20_ms, 10_ms);
  EXPECT_TRUE(r.deadlocked);
}

}  // namespace
}  // namespace dcdl
