// dcdl::probe: log-histogram exactness and percentile error bounds, series
// ring semantics, the RunProbe end-to-end path on real scenarios, and the
// artifact identity contract (byte-identical dcdl.timeseries.v1 across
// --jobs x --shards within the sharded identity class).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "dcdl/campaign/campaign.hpp"
#include "dcdl/probe/export.hpp"
#include "dcdl/probe/histogram.hpp"
#include "dcdl/probe/probe.hpp"
#include "dcdl/probe/profiler.hpp"
#include "dcdl/probe/series.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/sim/sharded.hpp"

namespace dcdl::probe {
namespace {

using namespace dcdl::literals;
using namespace dcdl::scenarios;

// ------------------------------------------------------------ LogHistogram

TEST(LogHistogramTest, CountSumMinMaxAreExact) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0);
  h.record(3);
  h.record(700);
  h.record(123'456'789);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 3 + 700 + 123'456'789);
  EXPECT_EQ(h.min(), 3);
  EXPECT_EQ(h.max(), 123'456'789);
}

TEST(LogHistogramTest, SmallValuesAreExactAndNegativesClampToZero) {
  // Values below the sub-bucket resolution (64) get one bucket each: the
  // reported percentile is the exact value, not an octave edge.
  LogHistogram h;
  for (int v = 0; v < 64; ++v) h.record(v);
  for (int v = 0; v < 64; ++v) {
    EXPECT_EQ(h.percentile((v + 1) / 64.0), v);
  }
  LogHistogram neg;
  neg.record(-5);
  EXPECT_EQ(neg.count(), 1u);
  EXPECT_EQ(neg.min(), 0) << "negative durations clamp to zero";
}

TEST(LogHistogramTest, PercentileErrorIsBoundedAndClampedToMax) {
  // Sub-bucketed octaves (32 sub-buckets per half-octave) bound the
  // percentile overshoot at ~3.2% of the true value; the top percentile is
  // clamped to the exact max. Use a deterministic skewed sequence spanning
  // several octaves.
  LogHistogram h;
  std::vector<std::int64_t> values;
  std::uint64_t x = 0x2545F4914F6CDD1Dull;
  for (int i = 0; i < 20'000; ++i) {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;  // xorshift: stable sequence
    values.push_back(static_cast<std::int64_t>(x % 50'000'000));
  }
  for (const std::int64_t v : values) h.record(v);
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99}) {
    const std::size_t rank = static_cast<std::size_t>(
        q * static_cast<double>(values.size()));
    const std::int64_t exact = values[std::min(rank, values.size() - 1)];
    const std::int64_t est = h.percentile(q);
    EXPECT_GE(est, exact - exact / 16) << "q=" << q;
    EXPECT_LE(est, exact + exact / 16) << "q=" << q;
  }
  EXPECT_EQ(h.percentile(1.0), values.back());
  EXPECT_LE(h.percentile(0.999999), values.back())
      << "percentiles never exceed the exact max";
}

TEST(LogHistogramTest, BucketEdgesCoverTheirValues) {
  // for_each_bucket reports inclusive upper edges: every recorded value
  // must be <= the edge of the bucket it landed in, and > the previous
  // visited edge (buckets are visited in ascending order).
  LogHistogram h;
  for (const std::int64_t v :
       {std::int64_t{1}, std::int64_t{63}, std::int64_t{64},
        std::int64_t{65}, std::int64_t{1'000}, std::int64_t{1'000'000},
        std::int64_t{123'456'789'012}}) {
    h.record(v);
  }
  std::int64_t prev_edge = -1;
  std::uint64_t visited = 0;
  h.for_each_bucket([&](std::int64_t edge, std::uint64_t count) {
    EXPECT_GT(edge, prev_edge) << "edges ascend";
    EXPECT_GT(count, 0u) << "only non-empty buckets are visited";
    prev_edge = edge;
    visited += count;
  });
  EXPECT_EQ(visited, h.count());
}

// ------------------------------------------------------------- SeriesStore

TEST(SeriesStoreTest, RingEvictsOldestAndKeepsOrder) {
  SeriesStore store(4);
  const std::uint32_t a = store.add("a");
  const std::uint32_t b = store.add("b");
  for (int k = 0; k < 7; ++k) {
    store.begin_tick(Time{(k + 1) * 100});
    store.set(a, k);
    store.set(b, 10.0 * k);
  }
  EXPECT_EQ(store.ticks(), 4u);
  EXPECT_EQ(store.total_ticks(), 7u);
  EXPECT_EQ(store.dropped_ticks(), 3u);
  // Retained rows are ticks 3..6, oldest first.
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(store.tick_time(k).ps(), static_cast<std::int64_t>(k + 4) * 100);
    EXPECT_DOUBLE_EQ(store.value(k, a), static_cast<double>(k + 3));
    EXPECT_DOUBLE_EQ(store.value(k, b), 10.0 * static_cast<double>(k + 3));
  }
  EXPECT_DOUBLE_EQ(store.series_max(a), 6);
  EXPECT_DOUBLE_EQ(store.series_mean(a), (3 + 4 + 5 + 6) / 4.0);
}

TEST(SeriesStoreTest, RowsAreZeroFilledOnOpen) {
  SeriesStore store(2);
  const std::uint32_t a = store.add("a");
  store.begin_tick(Time{1});
  store.set(a, 42);
  store.begin_tick(Time{2});  // not set: must read back 0, not 42
  EXPECT_DOUBLE_EQ(store.value(1, a), 0.0);
}

// ---------------------------------------------------------------- RunProbe

TEST(RunProbeTest, SamplesAtTheConfiguredIntervalAndFeedsHistograms) {
  RoutingLoopParams p;
  p.inject = Rate::gbps(7);  // above the Eq. 3 boundary: pauses + drops
  Scenario s = make_routing_loop(p);
  RunProbe rp(*s.net);
  rp.start(*s.sim, 2_ms);
  s.sim->run_until(2_ms);
  rp.finalize();

  // 2 ms at the default 100 us: ticks at 100 us .. 2000 us inclusive.
  EXPECT_EQ(rp.series().ticks(), 20u);
  EXPECT_EQ(rp.fct().count(), 0u)
      << "the routing loop never delivers: TTL is the only drain";
  EXPECT_GT(rp.hop_wait().count(), 0u)
      << "the hop_wait hook fires on every store-and-forward dequeue";
  EXPECT_GT(rp.pfc_pause().count(), 0u)
      << "above the boundary the loop asserts and releases PFC";
  EXPECT_EQ(rp.dp_detect().count(), 0u) << "dataplane off in this scenario";

  const auto summary = rp.summary();
  ASSERT_FALSE(summary.empty());
  EXPECT_EQ(summary.front().first, "ticks");
  EXPECT_DOUBLE_EQ(summary.front().second, 20);
}

TEST(RunProbeTest, DeliveringScenarioRecordsFctAndPacketLatency) {
  IncastParams p;
  Scenario s = make_incast(p);
  RunProbe rp(*s.net);
  rp.start(*s.sim, 2_ms);
  s.sim->run_until(2_ms);
  rp.finalize();
  EXPECT_EQ(rp.fct().count(), static_cast<std::uint64_t>(p.num_senders))
      << "one FCT per delivering flow, closed at finalize()";
  EXPECT_GT(rp.pkt_latency().count(), 0u);
  EXPECT_GT(rp.pkt_latency().min(), 0)
      << "per-packet latency includes at least the link delays";
  EXPECT_GE(rp.fct().max(), rp.pkt_latency().min());
  rp.finalize();  // idempotent: a second call must not double-record FCTs
  EXPECT_EQ(rp.fct().count(), static_cast<std::uint64_t>(p.num_senders));
}

TEST(RunProbeTest, DataplaneDetectionLatencyLandsInTheHistogram) {
  RoutingLoopParams p;
  p.inject = Rate::gbps(7);
  p.dataplane.policy = dataplane::RecoveryPolicy::kDetect;
  Scenario s = make_routing_loop(p);
  RunProbe rp(*s.net);
  rp.start(*s.sim, 20_ms);
  s.sim->run_until(20_ms);
  rp.finalize();
  EXPECT_GT(rp.dp_detect().count(), 0u)
      << "the in-band pipeline must confirm the loop deadlock";
  EXPECT_GT(rp.dp_detect().max(), 0);
}

TEST(RunProbeTest, SummaryIsDeterministicAcrossRuns) {
  auto run = [] {
    RoutingLoopParams p;
    p.inject = Rate::gbps(6);
    Scenario s = make_routing_loop(p);
    RunProbe rp(*s.net);
    rp.start(*s.sim, 2_ms);
    s.sim->run_until(2_ms);
    rp.finalize();
    return rp.summary();
  };
  EXPECT_EQ(run(), run());
}

// ------------------------------------------------- artifact identity class

std::string timeseries_for_shards(int shards) {
  std::optional<ScopedShardRequest> req;
  if (shards >= 1) req.emplace(shards);
  RoutingLoopParams p;
  p.inject = Rate::gbps(7);
  Scenario s = make_routing_loop(p);
  req.reset();
  RunProbe rp(*s.net);
  rp.start(*s.sim, 2_ms);
  s.sim->run_until(2_ms);
  rp.finalize();
  return to_timeseries_jsonl(rp);
}

TEST(TimeseriesArtifactTest, ByteIdenticalAcrossShardCounts) {
  // The sampler rides the control simulator: its ticks execute at window
  // barriers after the merged replay, so the exported artifact (which
  // carries deterministic series only) is one byte stream for every shard
  // count >= 1. Legacy --shards 0 is its own identity class, exactly like
  // the trace artifacts.
  const std::string s1 = timeseries_for_shards(1);
  EXPECT_EQ(s1, timeseries_for_shards(2));
  EXPECT_EQ(s1, timeseries_for_shards(4));
  EXPECT_NE(s1.find("\"schema\":\"dcdl.timeseries.v1\""), std::string::npos);
}

TEST(TimeseriesArtifactTest, HeaderRowsAndHistogramsAreWellFormed) {
  const std::string art = timeseries_for_shards(0);
  const std::string header = art.substr(0, art.find('\n'));
  EXPECT_NE(header.find("\"schema\":\"dcdl.timeseries.v1\""),
            std::string::npos);
  EXPECT_NE(header.find("\"interval_ps\":100000000"), std::string::npos);
  EXPECT_NE(header.find("\"ticks\":20"), std::string::npos);
  EXPECT_NE(header.find("\"queue_bytes\""), std::string::npos);
  EXPECT_NE(header.find("\"pfc.active_pauses\""), std::string::npos);
  EXPECT_EQ(header.find("\"engine."), std::string::npos)
      << "engine series never appear in golden artifacts";
  const std::size_t rows = static_cast<std::size_t>(
      std::count(art.begin(), art.end(), '\n'));
  // header + 20 ticks + one line per histogram.
  EXPECT_EQ(rows, 1 + 20 + 6u);
  EXPECT_NE(art.find("\"hist\":\"fct\""), std::string::npos);
  EXPECT_NE(art.find("\"hist\":\"hop_wait\""), std::string::npos);
}

TEST(TimeseriesArtifactTest, HistogramPercentilesRoundTripThroughJsonl) {
  // The p50/p99/p999 written to the hist lines must read back as exactly
  // the histogram's own percentiles (and the summary carries them in
  // microseconds) — the satellite round-trip for the report's new columns.
  RoutingLoopParams p;
  p.inject = Rate::gbps(7);
  Scenario s = make_routing_loop(p);
  RunProbe rp(*s.net);
  rp.start(*s.sim, 2_ms);
  s.sim->run_until(2_ms);
  rp.finalize();
  ASSERT_GT(rp.pfc_pause().count(), 0u);
  const std::string art = to_timeseries_jsonl(rp);
  const std::size_t pos = art.find("{\"hist\":\"pfc_pause\"");
  ASSERT_NE(pos, std::string::npos);
  const std::string line = art.substr(pos, art.find('\n', pos) - pos);
  const auto field = [&](const std::string& key) {
    const std::size_t k = line.find("\"" + key + "\":");
    EXPECT_NE(k, std::string::npos) << key;
    return static_cast<std::int64_t>(
        std::strtoll(line.c_str() + k + key.size() + 3, nullptr, 10));
  };
  EXPECT_EQ(field("p50"), rp.pfc_pause().percentile(0.50));
  EXPECT_EQ(field("p99"), rp.pfc_pause().percentile(0.99));
  EXPECT_EQ(field("p999"), rp.pfc_pause().percentile(0.999));
  bool found = false;
  for (const auto& [name, value] : rp.summary()) {
    if (name == "pfc_pause.p999_us") {
      found = true;
      EXPECT_DOUBLE_EQ(
          value,
          static_cast<double>(rp.pfc_pause().percentile(0.999)) / 1e6);
    }
  }
  EXPECT_TRUE(found) << "summary must carry the p999_us column";
}

TEST(TimeseriesArtifactTest, PerfettoCountersRenderDeterministically) {
  RoutingLoopParams p;
  p.inject = Rate::gbps(6);
  Scenario s = make_routing_loop(p);
  RunProbe rp(*s.net);
  rp.start(*s.sim, 1_ms);
  s.sim->run_until(1_ms);
  rp.finalize();
  const std::string json = to_perfetto_counters(rp);
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_EQ(json, to_perfetto_counters(rp));
}

TEST(TimeseriesArtifactTest, ExecutorProbeRecordsIdenticalAcrossJobs) {
  // The campaign path: probe summaries embedded in v5 records depend only
  // on the spec, never on --jobs.
  using namespace dcdl::campaign;
  ScenarioRegistry reg;
  register_builtin_scenarios(reg);
  SweepSpec spec;
  spec.scenario = "routing_loop";
  spec.axes = parse_grid("inject=4..7gbps:2");
  spec.seeds_per_cell = 1;
  spec.run_for = 2_ms;
  spec.drain_grace = 10_ms;
  const std::vector<RunSpec> runs = expand(spec);

  ExecutorOptions one, four;
  one.jobs = 1;
  four.jobs = 4;
  const CampaignResult a = CampaignExecutor(reg, one).run(runs);
  const CampaignResult b = CampaignExecutor(reg, four).run(runs);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].probe, b.records[i].probe);
    EXPECT_FALSE(a.records[i].probe.empty());
  }
  const std::string json = to_json(a);
  EXPECT_NE(json.find("\"schema\":\"dcdl.campaign.v6\""), std::string::npos);
  EXPECT_NE(json.find("\"probe\":{\"ticks\":"), std::string::npos);
  EXPECT_NE(json.find("\"fct.count\""), std::string::npos);
}

// ---------------------------------------------------------------- Profiler

TEST(ProfilerTest, ScopesAccumulateOnlyWhileInstalled) {
  // Not installed: a Scope records nothing (and reads no clock).
  {
    Profiler::Scope idle(Profiler::Span::kEventLoop);
    idle.add_units(5);
  }
  Profiler prof;
  EXPECT_EQ(prof.at(Profiler::Span::kEventLoop).calls, 0u);
  {
    Profiler::ScopedInstall install(prof);
    Profiler::Scope s(Profiler::Span::kEventLoop);
    s.add_units(3);
  }
  EXPECT_EQ(prof.at(Profiler::Span::kEventLoop).calls, 1u);
  EXPECT_EQ(prof.at(Profiler::Span::kEventLoop).units, 3u);
  EXPECT_EQ(Profiler::current(), nullptr) << "install is scoped";
  const std::string report = prof.report();
  EXPECT_NE(report.find("event_loop"), std::string::npos);
}

TEST(ProfilerTest, InstalledRunRecordsEventLoopSpans) {
  Profiler prof;
  {
    Profiler::ScopedInstall install(prof);
    RoutingLoopParams p;
    Scenario s = make_routing_loop(p);
    s.sim->run_until(1_ms);
  }
  const Profiler::Accum& loop = prof.at(Profiler::Span::kEventLoop);
  EXPECT_GT(loop.calls, 0u);
  EXPECT_GT(loop.units, 0u) << "the span carries the executed-event delta";
  EXPECT_GT(loop.wall_ns, 0u);
}

}  // namespace
}  // namespace dcdl::probe
