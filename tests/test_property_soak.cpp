// Randomized property soak: across randomly generated topologies, routing
// schemes, and flow sets, the library's core guarantees must hold:
//
//   P1  losslessness: PFC never lets the shared buffer overflow;
//   P2  Dally-Seitz: an acyclic buffer dependency graph means no deadlock,
//       ever (the certified-deadlock-free direction);
//   P3  detector soundness: if the online monitor confirms a deadlock, the
//       stop-and-drain ground truth agrees — and vice versa;
//   P4  packet conservation: sent = delivered + TTL drops + trapped.
//
// Each parameter seed generates one configuration deterministically.
#include <gtest/gtest.h>

#include <memory>

#include "dcdl/analysis/bdg.hpp"
#include "dcdl/analysis/deadlock.hpp"
#include "dcdl/common/rng.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/topo/generators.hpp"

namespace dcdl {
namespace {

using namespace dcdl::literals;
using namespace dcdl::topo;

struct SoakConfig {
  std::unique_ptr<Simulator> sim;
  std::unique_ptr<Topology> topo;
  std::unique_ptr<Network> net;
  std::vector<FlowSpec> flows;
};

SoakConfig generate(std::uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  SoakConfig cfg;
  cfg.sim = std::make_unique<Simulator>();

  // Random topology.
  switch (rng.uniform(5)) {
    case 0: {
      RingTopo r = make_ring(3 + static_cast<int>(rng.uniform(4)), 2);
      cfg.topo = std::make_unique<Topology>(std::move(r.topo));
      break;
    }
    case 1: {
      MeshTopo m = make_mesh(2 + static_cast<int>(rng.uniform(2)),
                             2 + static_cast<int>(rng.uniform(2)));
      cfg.topo = std::make_unique<Topology>(std::move(m.topo));
      break;
    }
    case 2: {
      LeafSpineTopo ls =
          make_leaf_spine(2 + static_cast<int>(rng.uniform(3)),
                          1 + static_cast<int>(rng.uniform(2)), 2);
      cfg.topo = std::make_unique<Topology>(std::move(ls.topo));
      break;
    }
    case 3: {
      JellyfishTopo j = make_jellyfish(8, 3, 1, seed);
      cfg.topo = std::make_unique<Topology>(std::move(j.topo));
      break;
    }
    default: {
      BCubeRelayTopo bc = make_bcube_relay(2 + static_cast<int>(rng.uniform(2)), 1);
      cfg.topo = std::make_unique<Topology>(std::move(bc.topo));
      break;
    }
  }

  NetConfig net_cfg;
  net_cfg.tx_jitter = Time{static_cast<std::int64_t>(rng.uniform(20'000))};
  net_cfg.jitter_seed = seed;
  net_cfg.pfc.xoff_bytes =
      20 * 1024 + static_cast<std::int64_t>(rng.uniform(40 * 1024));
  net_cfg.pfc.xon_bytes = net_cfg.pfc.xoff_bytes - 2000;
  cfg.net = std::make_unique<Network>(*cfg.sim, *cfg.topo, net_cfg);

  // Random routing: shortest-path ECMP or up*/down*.
  if (rng.uniform(2) == 0) {
    routing::install_shortest_paths(*cfg.net);
  } else {
    routing::install_up_down(*cfg.net);
  }

  // Random flows between distinct hosts.
  const auto hosts = cfg.topo->hosts();
  const int num_flows = 4 + static_cast<int>(rng.uniform(8));
  for (int i = 0; i < num_flows; ++i) {
    FlowSpec f;
    f.id = static_cast<FlowId>(i + 1);
    f.src_host = hosts[rng.uniform(hosts.size())];
    do {
      f.dst_host = hosts[rng.uniform(hosts.size())];
    } while (f.dst_host == f.src_host);
    f.packet_bytes = 500 + static_cast<std::uint32_t>(rng.uniform(3)) * 250;
    f.ttl = static_cast<std::uint8_t>(8 + rng.uniform(56));
    std::unique_ptr<Pacer> pacer;
    if (rng.uniform(3) == 0) {
      pacer = std::make_unique<TokenBucketPacer>(
          Rate::gbps(1 + static_cast<double>(rng.uniform(30))),
          f.packet_bytes);
    }
    cfg.net->host_at(f.src_host).add_flow(f, std::move(pacer));
    cfg.flows.push_back(f);
  }
  return cfg;
}

class PropertySoak : public testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertySoak, InvariantsHold) {
  SoakConfig cfg = generate(GetParam());

  // Packet sizes vary per flow; count packets via traces.
  std::uint64_t ttl_drops = 0, noroute_drops = 0;
  std::uint64_t trapped_packets_hint = 0;
  cfg.net->trace().dropped = [&](Time, const Packet&, NodeId, DropReason r) {
    if (r == DropReason::kTtlExpired) ++ttl_drops;
    if (r == DropReason::kNoRoute) ++noroute_drops;
  };

  const bool bdg_acyclic =
      !analysis::BufferDependencyGraph::build(*cfg.net, cfg.flows).has_cycle();

  analysis::DeadlockMonitor monitor(*cfg.net, 50_us, 1_ms);
  monitor.start(Time::zero(), 15_ms);
  cfg.sim->run_until(5_ms);
  const auto drain = analysis::stop_and_drain(*cfg.net, 10_ms);

  // P1: losslessness.
  EXPECT_EQ(cfg.net->drops(DropReason::kBufferOverflow), 0u)
      << "seed " << GetParam();

  // P2: certified-free never deadlocks.
  if (bdg_acyclic) {
    EXPECT_FALSE(drain.deadlocked) << "seed " << GetParam();
  }

  // P3: detector agreement (the monitor keeps polling through the drain).
  EXPECT_EQ(monitor.deadlocked(), drain.deadlocked) << "seed " << GetParam();

  // P4: packet conservation. Trapped bytes are whole packets of the flows
  // involved; count trapped packets by re-walking per-queue flow bytes.
  std::uint64_t sent = 0, delivered = 0;
  std::uint64_t sent_bytes = 0, delivered_bytes = 0, dropped_bytes = 0;
  cfg.net->trace().dropped = nullptr;
  for (const FlowSpec& f : cfg.flows) {
    sent += cfg.net->host_at(f.src_host).sent_packets(f.id);
    delivered += cfg.net->host_at(f.dst_host).delivered_packets(f.id);
    sent_bytes += static_cast<std::uint64_t>(
        cfg.net->host_at(f.src_host).sent_bytes(f.id));
    delivered_bytes += static_cast<std::uint64_t>(
        cfg.net->host_at(f.dst_host).delivered_bytes(f.id));
  }
  (void)trapped_packets_hint;
  (void)dropped_bytes;
  // Byte-level conservation: sent = delivered + trapped + dropped bytes.
  // We track dropped packets only by count; re-derive dropped bytes bound:
  // every packet is 500-1000 bytes.
  const std::uint64_t trapped_bytes =
      static_cast<std::uint64_t>(drain.trapped_bytes);
  const std::uint64_t explained_min =
      delivered_bytes + trapped_bytes + 500 * (ttl_drops + noroute_drops);
  const std::uint64_t explained_max =
      delivered_bytes + trapped_bytes + 1000 * (ttl_drops + noroute_drops);
  EXPECT_GE(sent_bytes, explained_min) << "seed " << GetParam();
  EXPECT_LE(sent_bytes, explained_max) << "seed " << GetParam();
  EXPECT_GE(sent, delivered) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, PropertySoak,
                         testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace dcdl
