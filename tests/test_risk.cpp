// Deadlock risk analyzer: the tighter-than-CBD condition. The score must
// separate the paper's Figure-3 (cycle, util 0.5, safe) from Figure-4
// (cycle, util 1.0, deadlocks) and reduce to the boundary model on loops.
#include <gtest/gtest.h>

#include "dcdl/analysis/risk.hpp"
#include "dcdl/scenarios/scenario.hpp"

namespace dcdl::analysis {
namespace {

using namespace dcdl::literals;
using namespace dcdl::scenarios;

TEST(StableRates, FourSwitchSharesAreTwenty) {
  Scenario s = make_four_switch(FourSwitchParams{});
  const auto rates = stable_flow_rates(*s.net, s.flows);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_NEAR(rates[0].as_gbps(), 20.0, 0.5);
  EXPECT_NEAR(rates[1].as_gbps(), 20.0, 0.5);
}

TEST(StableRates, ThreeFlowsStillTwenty) {
  // The paper: "it is easy to see that all flows should have 20Gbps
  // throughput" — the analyzer's fair shares agree.
  FourSwitchParams p;
  p.with_flow3 = true;
  Scenario s = make_four_switch(p);
  const auto rates = stable_flow_rates(*s.net, s.flows);
  ASSERT_EQ(rates.size(), 3u);
  for (const Rate r : rates) EXPECT_NEAR(r.as_gbps(), 20.0, 0.5);
}

TEST(StableRates, DemandCapsBind) {
  FourSwitchParams p;
  p.with_flow3 = true;
  Scenario s = make_four_switch(p);
  const auto rates =
      stable_flow_rates(*s.net, s.flows,
                        {Rate::zero(), Rate::zero(), Rate::gbps(2)});
  EXPECT_NEAR(rates[2].as_gbps(), 2.0, 0.1);
  // Flow 1 inherits the slack on B->C but stays bottlenecked at 20 by the
  // shared links elsewhere.
  EXPECT_NEAR(rates[0].as_gbps(), 20.0, 0.5);
}

TEST(Risk, Figure3CycleHasTwoSlackLinks) {
  Scenario s = make_four_switch(FourSwitchParams{});
  const RiskReport r = assess_deadlock_risk(*s.net, s.flows);
  EXPECT_TRUE(r.cbd_present);
  ASSERT_EQ(r.cycles.size(), 1u);
  // B->C carries only flow 1 and D->A only flow 2: two slack links at
  // utilization 0.5 interleave with the two saturated ones.
  EXPECT_EQ(r.cycles[0].slack_links, 2);
  EXPECT_NEAR(r.cycles[0].min_utilization, 0.5, 0.05);
  EXPECT_FALSE(r.deadlock_reachable());
}

TEST(Risk, Figure4LeavesOneSlackLink) {
  // Flow 3 saturates B->C; only D->A (0.5) remains slack, and one slack
  // link cannot stop the pause-compounding cascade: reachable.
  FourSwitchParams p;
  p.with_flow3 = true;
  Scenario s = make_four_switch(p);
  const RiskReport r = assess_deadlock_risk(*s.net, s.flows);
  EXPECT_TRUE(r.cbd_present);
  ASSERT_EQ(r.cycles.size(), 1u);
  EXPECT_EQ(r.cycles[0].slack_links, 1);
  EXPECT_TRUE(r.deadlock_reachable());
}

TEST(Risk, Figure5LimiterLowersTheScore) {
  FourSwitchParams p;
  p.with_flow3 = true;
  Scenario s = make_four_switch(p);
  const RiskReport at2 = assess_deadlock_risk(
      *s.net, s.flows, {Rate::zero(), Rate::zero(), Rate::gbps(2)});
  // B->C now carries 20 + 2 of 40: back to two slack links.
  ASSERT_EQ(at2.cycles.size(), 1u);
  EXPECT_EQ(at2.cycles[0].slack_links, 2);
  EXPECT_NEAR(at2.cycles[0].min_utilization, 0.5, 0.05);
  EXPECT_FALSE(at2.deadlock_reachable());
}

TEST(Risk, WeakestHopIsTheRateLimitingTarget) {
  // §4 "intelligent rate limiting": the analyzer names the hop to shape.
  Scenario s = make_four_switch(FourSwitchParams{});
  const RiskReport r = assess_deadlock_risk(*s.net, s.flows);
  ASSERT_EQ(r.cycles.size(), 1u);
  const CycleRisk& cycle = r.cycles[0];
  // The weakest link enters B's or A's RX1 (the two 0.5-utilization hops
  // B->C and D->A feed C.RX1 and A.RX1; weakest_hop picks the first).
  const QueueKey into =
      cycle.cycle[(cycle.weakest_hop + 1) % cycle.cycle.size()];
  EXPECT_TRUE(into.node == s.node("C") || into.node == s.node("A"));
}

TEST(Risk, LoopRiskEqualsBoundaryRatio) {
  // Loop risk = r / (n*B/TTL): 4 Gbps of 5 -> 0.8; 10 of 5 -> capped 1.0.
  {
    RoutingLoopParams p;
    p.inject = Rate::gbps(4);
    Scenario s = make_routing_loop(p);
    const RiskReport r =
        assess_deadlock_risk(*s.net, s.flows, {Rate::gbps(4)});
    EXPECT_TRUE(r.cbd_present);
    EXPECT_NEAR(r.max_risk, 0.8, 0.05);
    EXPECT_FALSE(r.deadlock_reachable());  // every loop link slack at 0.8
  }
  {
    RoutingLoopParams p;
    p.inject = Rate::gbps(10);
    Scenario s = make_routing_loop(p);
    const RiskReport r =
        assess_deadlock_risk(*s.net, s.flows, {Rate::gbps(10)});
    EXPECT_NEAR(r.max_risk, 1.0, 0.01);
    EXPECT_TRUE(r.deadlock_reachable());  // all loop links saturated
  }
}

TEST(Risk, RingDeadlockScenarioSaturates) {
  Scenario s = make_ring_deadlock(RingDeadlockParams{});
  const RiskReport r = assess_deadlock_risk(*s.net, s.flows);
  EXPECT_TRUE(r.cbd_present);
  EXPECT_NEAR(r.max_risk, 1.0, 0.01);
}

TEST(Risk, NoCycleMeansZeroRisk) {
  Scenario s = make_incast(IncastParams{});
  const RiskReport r = assess_deadlock_risk(*s.net, s.flows);
  EXPECT_FALSE(r.cbd_present);
  EXPECT_EQ(r.max_risk, 0.0);
  EXPECT_FALSE(r.deadlock_reachable());
}

TEST(Risk, PredictionsMatchSimulationOutcomes) {
  // The headline property: across the canonical scenarios, a reachable
  // score (>= 0.99) coincides with observed deadlock and an unsaturable
  // score (< 0.9) with survival. (The stochastic 0.9-1.0 band is reported
  // honestly by bench_risk_score.)
  struct Case {
    const char* name;
    bool expect_deadlock;
  };
  // fig3: two slack links, predicted safe, observed safe.
  {
    Scenario s = make_four_switch(FourSwitchParams{});
    const bool reachable =
        assess_deadlock_risk(*s.net, s.flows).deadlock_reachable();
    const bool deadlocked = run_and_check(s, 15_ms, 10_ms).deadlocked;
    EXPECT_FALSE(reachable);
    EXPECT_FALSE(deadlocked);
  }
  // fig4: one slack link, predicted reachable, observed deadlock.
  {
    FourSwitchParams p;
    p.with_flow3 = true;
    Scenario s = make_four_switch(p);
    const bool reachable =
        assess_deadlock_risk(*s.net, s.flows).deadlock_reachable();
    const bool deadlocked = run_and_check(s, 15_ms, 10_ms).deadlocked;
    EXPECT_TRUE(reachable);
    EXPECT_TRUE(deadlocked);
  }
}

}  // namespace
}  // namespace dcdl::analysis
