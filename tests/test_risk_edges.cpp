// Edge cases of the risk analyzer's path walking and rate allocation:
// blackholes, unreachable destinations, empty flow sets, demand vectors.
#include <gtest/gtest.h>

#include "dcdl/analysis/risk.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/topo/generators.hpp"

namespace dcdl::analysis {
namespace {

using namespace dcdl::topo;

TEST(RiskEdges, EmptyFlowSet) {
  Simulator sim;
  const RingTopo line = make_line(2, 1);
  Topology topo = line.topo;
  Network net(sim, topo, NetConfig{});
  routing::install_shortest_paths(net);
  const RiskReport r = assess_deadlock_risk(net, {});
  EXPECT_FALSE(r.cbd_present);
  EXPECT_EQ(r.max_risk, 0.0);
  EXPECT_TRUE(stable_flow_rates(net, {}).empty());
}

TEST(RiskEdges, BlackholedFlowGetsAPrefixOnly) {
  Simulator sim;
  const RingTopo line = make_line(3, 1);
  Topology topo = line.topo;
  Network net(sim, topo, NetConfig{});
  routing::install_shortest_paths(net);
  // Remove the middle switch's route: the flow blackholes there.
  FlowSpec f;
  f.id = 1;
  f.src_host = line.hosts[0][0];
  f.dst_host = line.hosts[2][0];
  net.switch_at(line.switches[1]).routes().clear();
  const auto channels = flow_channels(net, {f});
  ASSERT_EQ(channels.size(), 1u);
  // host->S0 and S0->S1; nothing beyond the blackhole.
  EXPECT_EQ(channels[0].size(), 2u);
  // Rates still computable (the truncated path is what loads links).
  const auto rates = stable_flow_rates(net, {f});
  EXPECT_EQ(rates.size(), 1u);
}

TEST(RiskEdges, UnreachableDestination) {
  Simulator sim;
  const RingTopo line = make_line(2, 1);
  Topology topo = line.topo;
  Network net(sim, topo, NetConfig{});
  // No routes installed at all.
  FlowSpec f;
  f.id = 1;
  f.src_host = line.hosts[0][0];
  f.dst_host = line.hosts[1][0];
  const RiskReport r = assess_deadlock_risk(net, {f});
  EXPECT_FALSE(r.cbd_present);
}

TEST(RiskEdges, DemandVectorShorterThanFlows) {
  Simulator sim;
  const RingTopo line = make_line(2, 2);
  Topology topo = line.topo;
  Network net(sim, topo, NetConfig{});
  routing::install_shortest_paths(net);
  std::vector<FlowSpec> flows;
  for (FlowId id : {1u, 2u}) {
    FlowSpec f;
    f.id = id;
    f.src_host = line.hosts[0][id - 1];
    f.dst_host = line.hosts[1][id - 1];
    flows.push_back(f);
  }
  // Only flow 1 capped; flow 2 takes what max-min leaves.
  const auto rates = stable_flow_rates(net, flows, {Rate::gbps(4)});
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_NEAR(rates[0].as_gbps(), 4.0, 0.1);
  EXPECT_NEAR(rates[1].as_gbps(), 36.0, 0.5);  // leftover of the S0->S1 link
}

TEST(RiskEdges, StableRatesRespectSharedBottleneck) {
  // Three flows over one 40G link: 13.33 each.
  Simulator sim;
  const RingTopo line = make_line(2, 3);
  Topology topo = line.topo;
  Network net(sim, topo, NetConfig{});
  routing::install_shortest_paths(net);
  std::vector<FlowSpec> flows;
  for (FlowId id : {1u, 2u, 3u}) {
    FlowSpec f;
    f.id = id;
    f.src_host = line.hosts[0][id - 1];
    f.dst_host = line.hosts[1][id - 1];
    flows.push_back(f);
  }
  const auto rates = stable_flow_rates(net, flows);
  for (const Rate r : rates) EXPECT_NEAR(r.as_gbps(), 40.0 / 3, 0.2);
}

TEST(RiskEdges, LoopChannelsAppearOnce) {
  Simulator sim;
  const RingTopo ring = make_ring(3, 1);
  Topology topo = ring.topo;
  Network net(sim, topo, NetConfig{});
  routing::install_loop_route(net, ring.hosts[1][0], ring.switches);
  FlowSpec f;
  f.id = 1;
  f.src_host = ring.hosts[0][0];
  f.dst_host = ring.hosts[1][0];
  f.ttl = 30;
  const auto channels = flow_channels(net, {f});
  ASSERT_EQ(channels.size(), 1u);
  // host->S0 plus the 3 distinct loop channels, each exactly once.
  EXPECT_EQ(channels[0].size(), 4u);
  std::set<std::pair<NodeId, PortId>> uniq(channels[0].begin(),
                                           channels[0].end());
  EXPECT_EQ(uniq.size(), channels[0].size());
}

}  // namespace
}  // namespace dcdl::analysis
