#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "dcdl/common/rng.hpp"

namespace dcdl {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.uniform(bound), bound);
    }
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(11);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) hits[rng.uniform(10)]++;
  for (int i = 0; i < 10; ++i) {
    EXPECT_GT(hits[i], 700) << "bucket " << i;  // expectation 1000
    EXPECT_LT(hits[i], 1300) << "bucket " << i;
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(250.0);
  EXPECT_NEAR(sum / n, 250.0, 10.0);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v.begin(), v.end());
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
  // And it actually moved something.
  std::vector<int> identity(100);
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_NE(v, identity);
}

}  // namespace
}  // namespace dcdl
