#include <gtest/gtest.h>

#include <map>

#include "dcdl/routing/route_table.hpp"

namespace dcdl {
namespace {

TEST(RouteTable, DstRouteLookup) {
  RouteTable rt;
  rt.set_dst_route(7, 3);
  EXPECT_EQ(rt.lookup(1, 7), PortId{3});
  EXPECT_FALSE(rt.lookup(1, 8).has_value());
}

TEST(RouteTable, FlowRouteOverridesDst) {
  RouteTable rt;
  rt.set_dst_route(7, 3);
  rt.set_flow_route(42, 5);
  EXPECT_EQ(rt.lookup(42, 7), PortId{5});
  EXPECT_EQ(rt.lookup(41, 7), PortId{3});
}

TEST(RouteTable, EcmpIsDeterministicPerFlow) {
  RouteTable rt;
  rt.set_dst_ecmp(9, {0, 1, 2, 3});
  for (FlowId f = 0; f < 50; ++f) {
    const auto first = rt.lookup(f, 9);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(rt.lookup(f, 9), first);
  }
}

TEST(RouteTable, EcmpSpreadsFlows) {
  RouteTable rt;
  rt.set_dst_ecmp(9, {0, 1, 2, 3});
  std::map<PortId, int> hits;
  for (FlowId f = 0; f < 4000; ++f) hits[*rt.lookup(f, 9)]++;
  EXPECT_EQ(hits.size(), 4u);
  for (const auto& [port, n] : hits) {
    EXPECT_GT(n, 700) << "port " << port;  // expectation 1000
    EXPECT_LT(n, 1300) << "port " << port;
  }
}

TEST(RouteTable, SaltChangesEcmpSpread) {
  RouteTable a, b;
  a.set_dst_ecmp(9, {0, 1, 2, 3});
  b.set_dst_ecmp(9, {0, 1, 2, 3});
  a.set_ecmp_salt(1);
  b.set_ecmp_salt(2);
  int differ = 0;
  for (FlowId f = 0; f < 200; ++f) {
    if (a.lookup(f, 9) != b.lookup(f, 9)) ++differ;
  }
  EXPECT_GT(differ, 50);
}

TEST(RouteTable, ClearDstRemovesEntry) {
  RouteTable rt;
  rt.set_dst_route(7, 3);
  rt.clear_dst_route(7);
  EXPECT_FALSE(rt.lookup(0, 7).has_value());
}

TEST(RouteTable, VersionBumpsOnEveryMutation) {
  RouteTable rt;
  const auto v0 = rt.version();
  rt.set_dst_route(1, 0);
  const auto v1 = rt.version();
  rt.set_flow_route(1, 0);
  const auto v2 = rt.version();
  rt.clear_dst_route(1);
  const auto v3 = rt.version();
  EXPECT_LT(v0, v1);
  EXPECT_LT(v1, v2);
  EXPECT_LT(v2, v3);
}

TEST(RouteTable, DstCandidatesExposesEcmpSet) {
  RouteTable rt;
  rt.set_dst_ecmp(4, {2, 5});
  ASSERT_NE(rt.dst_candidates(4), nullptr);
  EXPECT_EQ(rt.dst_candidates(4)->size(), 2u);
  EXPECT_EQ(rt.dst_candidates(6), nullptr);
}

}  // namespace
}  // namespace dcdl
