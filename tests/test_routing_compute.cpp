#include <gtest/gtest.h>

#include "dcdl/device/switch.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/topo/generators.hpp"

namespace dcdl::routing {
namespace {

using namespace dcdl::topo;

struct Fixture {
  Simulator sim;
  Topology topo;
  std::unique_ptr<Network> net;

  explicit Fixture(Topology t) : topo(std::move(t)) {
    net = std::make_unique<Network>(sim, topo, NetConfig{});
  }
};

// Follows installed tables from a source host; returns the node sequence.
std::vector<NodeId> walk(const Network& net, FlowId flow, NodeId src,
                         NodeId dst, int max_steps = 64) {
  std::vector<NodeId> path{src};
  NodeId cur = net.topo().peer(src, 0).peer_node;
  for (int i = 0; i < max_steps; ++i) {
    path.push_back(cur);
    if (cur == dst) return path;
    if (!net.topo().is_switch(cur)) return path;  // wrong host
    const auto eg = net.switch_at(cur).routes().lookup(flow, dst);
    if (!eg) return path;
    cur = net.topo().peer(cur, *eg).peer_node;
  }
  path.push_back(cur);
  return path;
}

TEST(HopDistances, LineTopology) {
  const RingTopo l = make_line(4, 1);
  const auto d = hop_distances(l.topo, l.hosts[3][0]);
  EXPECT_EQ(d[l.switches[3]], 1);
  EXPECT_EQ(d[l.switches[0]], 4);
  EXPECT_EQ(d[l.hosts[0][0]], 5);
}

TEST(ShortestPath, EndsAtDestination) {
  const FatTreeTopo ft = make_fat_tree(4);
  const auto path =
      shortest_path(ft.topo, ft.all_hosts[0], ft.all_hosts[15]);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), ft.all_hosts[0]);
  EXPECT_EQ(path.back(), ft.all_hosts[15]);
  // Cross-pod in fat-tree: host-edge-agg-core-agg-edge-host = 7 nodes.
  EXPECT_EQ(path.size(), 7u);
}

TEST(ShortestPath, SameRackIsTwoHops) {
  const FatTreeTopo ft = make_fat_tree(4);
  const auto path = shortest_path(ft.topo, ft.all_hosts[0], ft.all_hosts[1]);
  EXPECT_EQ(path.size(), 3u);  // host-edge-host
}

TEST(InstallShortestPaths, EveryPairConnected) {
  Fixture f(make_fat_tree(4).topo);
  install_shortest_paths(*f.net);
  const auto hosts = f.topo.hosts();
  for (const NodeId src : hosts) {
    for (const NodeId dst : hosts) {
      if (src == dst) continue;
      const auto path = walk(*f.net, /*flow=*/1, src, dst);
      EXPECT_EQ(path.back(), dst)
          << f.topo.node(src).name << " -> " << f.topo.node(dst).name;
      EXPECT_LE(path.size(), 7u);
    }
  }
}

TEST(InstallShortestPaths, EcmpUsesMultiplePaths) {
  Fixture f(make_leaf_spine(2, 4, 1).topo);
  install_shortest_paths(*f.net);
  const LeafSpineTopo ls = make_leaf_spine(2, 4, 1);  // same layout
  // From leaf0, destination on leaf1: 4 equal-cost spine choices.
  const auto* cands = f.net->switch_at(ls.leaves[0])
                          .routes()
                          .dst_candidates(ls.hosts[1][0]);
  ASSERT_NE(cands, nullptr);
  EXPECT_EQ(cands->size(), 4u);
}

TEST(InstallFlowPath, PinsExactRoute) {
  const RingTopo r = make_ring(4, 1);
  Fixture f(r.topo);
  // The long way round: h0 -> S0 -> S3 -> S2 -> h2.
  install_flow_path(*f.net, 5,
                    {r.hosts[0][0], r.switches[0], r.switches[3],
                     r.switches[2], r.hosts[2][0]});
  const auto path = walk(*f.net, 5, r.hosts[0][0], r.hosts[2][0]);
  const std::vector<NodeId> want{r.hosts[0][0], r.switches[0], r.switches[3],
                                 r.switches[2], r.hosts[2][0]};
  EXPECT_EQ(path, want);
}

TEST(InstallLoopRoute, CreatesForwardingLoop) {
  const RingTopo r = make_ring(3, 1);
  Fixture f(r.topo);
  install_loop_route(*f.net, r.hosts[1][0], r.switches);
  const auto loop = find_forwarding_loop(*f.net, r.hosts[1][0]);
  ASSERT_TRUE(loop.has_value());
  EXPECT_EQ(loop->size(), 3u);
}

TEST(FindForwardingLoop, NoneOnCorrectRoutes) {
  Fixture f(make_fat_tree(4).topo);
  install_shortest_paths(*f.net);
  for (const NodeId dst : f.topo.hosts()) {
    EXPECT_FALSE(find_forwarding_loop(*f.net, dst).has_value());
  }
}

// Up*/down* routing: every path must be valley-free — once it goes down
// (by the algorithm's own BFS-level ordering), it never goes up again.
bool valley_free(const Topology& topo, const std::vector<NodeId>& path) {
  const std::vector<int> level = up_down_levels(topo);
  const auto up = [&](NodeId a, NodeId b) {
    if (level[b] != level[a]) return level[b] < level[a];
    return b < a;
  };
  bool went_down = false;
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    if (!topo.is_switch(path[i]) || !topo.is_switch(path[i + 1])) continue;
    if (up(path[i], path[i + 1])) {
      if (went_down) return false;
    } else {
      went_down = true;
    }
  }
  return true;
}

TEST(UpDown, FatTreePathsAreValleyFreeAndComplete) {
  Fixture f(make_fat_tree(4).topo);
  install_up_down(*f.net);
  const auto hosts = f.topo.hosts();
  for (const NodeId src : hosts) {
    for (const NodeId dst : hosts) {
      if (src == dst) continue;
      const auto path = walk(*f.net, 1, src, dst);
      ASSERT_EQ(path.back(), dst);
      EXPECT_TRUE(valley_free(f.topo, path));
    }
  }
}

TEST(UpDown, JellyfishPathsAreValleyFreeAndComplete) {
  const JellyfishTopo j = make_jellyfish(10, 3, 1, 5);
  Fixture f(j.topo);
  install_up_down(*f.net);
  const auto hosts = f.topo.hosts();
  int reachable = 0;
  for (const NodeId src : hosts) {
    for (const NodeId dst : hosts) {
      if (src == dst) continue;
      const auto path = walk(*f.net, 1, src, dst);
      if (path.back() == dst) {
        ++reachable;
        EXPECT_TRUE(valley_free(f.topo, path));
      }
    }
  }
  // Up*/down* on a connected graph reaches everything (possibly via the
  // highest-ordered node).
  EXPECT_EQ(reachable, static_cast<int>(hosts.size() * (hosts.size() - 1)));
}

TEST(UpDown, NeverLoops) {
  const JellyfishTopo j = make_jellyfish(12, 4, 1, 9);
  Fixture f(j.topo);
  install_up_down(*f.net);
  for (const NodeId dst : f.topo.hosts()) {
    EXPECT_FALSE(find_forwarding_loop(*f.net, dst).has_value());
  }
}

}  // namespace
}  // namespace dcdl::routing
