// Scale smoke tests: the simulator and analyses must stay correct (and
// tractable) on fabric-sized topologies.
#include <gtest/gtest.h>

#include "dcdl/analysis/bdg.hpp"
#include "dcdl/analysis/deadlock.hpp"
#include "dcdl/common/rng.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/topo/generators.hpp"

namespace dcdl {
namespace {

using namespace dcdl::literals;
using namespace dcdl::topo;

TEST(Scale, FatTreeK8Structure) {
  const FatTreeTopo ft = make_fat_tree(8);
  EXPECT_EQ(ft.core.size(), 16u);
  EXPECT_EQ(ft.all_hosts.size(), 128u);
  std::size_t switches = ft.core.size();
  for (const auto& pod : ft.agg) switches += pod.size();
  for (const auto& pod : ft.edge) switches += pod.size();
  EXPECT_EQ(switches, 80u);
  for (const NodeId sw : ft.topo.switches()) {
    EXPECT_EQ(ft.topo.degree(sw), 8u);
  }
}

TEST(Scale, FatTreeK8PermutationRunsLossless) {
  Simulator sim;
  const FatTreeTopo ft = make_fat_tree(8);
  Topology topo = ft.topo;
  NetConfig cfg;
  cfg.tx_jitter = Time{10'000};
  Network net(sim, topo, cfg);
  routing::install_shortest_paths(net);

  std::vector<NodeId> dsts = ft.all_hosts;
  Rng rng(77);
  rng.shuffle(dsts.begin(), dsts.end());
  std::vector<FlowSpec> flows;
  for (std::size_t i = 0; i < ft.all_hosts.size(); ++i) {
    if (ft.all_hosts[i] == dsts[i]) continue;
    FlowSpec f;
    f.id = static_cast<FlowId>(i + 1);
    f.src_host = ft.all_hosts[i];
    f.dst_host = dsts[i];
    f.packet_bytes = 1000;
    f.ttl = 64;
    net.host_at(f.src_host).add_flow(f);
    flows.push_back(f);
  }
  // Valley-free shortest paths on a fat tree: certified deadlock-free.
  EXPECT_TRUE(analysis::routing_deadlock_free(net, flows));

  sim.run_until(300_us);
  EXPECT_EQ(net.drops(DropReason::kBufferOverflow), 0u);
  std::int64_t delivered = 0;
  for (const FlowSpec& f : flows) {
    delivered += net.host_at(f.dst_host).delivered_bytes(f.id);
  }
  // 127 flows for 300 us minus ramp: aggregate well into the Tbps range.
  EXPECT_GT(static_cast<double>(delivered) * 8 / 300e-6 / 1e12, 1.0);
  EXPECT_FALSE(analysis::snapshot_wait_for(net).has_cycle);
}

TEST(Scale, JellyfishAllPairsAnalysisIsTractable) {
  // 24 switches x 2 hosts: 2256 flows through the BDG builder + risk-free
  // certification under up*/down*.
  Simulator sim;
  const JellyfishTopo j = make_jellyfish(24, 5, 2, 13);
  Topology topo = j.topo;
  Network net(sim, topo, NetConfig{});
  routing::install_up_down(net);
  std::vector<FlowSpec> flows;
  FlowId id = 1;
  for (const NodeId a : topo.hosts()) {
    for (const NodeId b : topo.hosts()) {
      if (a == b) continue;
      FlowSpec f;
      f.id = id++;
      f.src_host = a;
      f.dst_host = b;
      flows.push_back(f);
    }
  }
  EXPECT_TRUE(analysis::routing_deadlock_free(net, flows));
}

}  // namespace
}  // namespace dcdl
