// End-to-end smoke tests for the paper's three case studies. These are the
// headline behaviours everything else supports:
//   §3.1  routing loop deadlocks iff r > nB/TTL (5 Gbps at B=40G,n=2,TTL=16)
//   §3.2  two flows with CBD -> no deadlock; adding flow 3 -> deadlock
//   §3.3  rate-limiting flow 3 low enough avoids the deadlock
#include <gtest/gtest.h>

#include "dcdl/scenarios/scenario.hpp"

namespace dcdl::scenarios {
namespace {

using dcdl::literals::operator""_ms;

TEST(RoutingLoopSmoke, AboveThresholdDeadlocks) {
  RoutingLoopParams p;
  p.inject = Rate::gbps(8);  // threshold is 5 Gbps
  Scenario s = make_routing_loop(p);
  const RunSummary r = run_and_check(s, 5_ms, 10_ms);
  EXPECT_TRUE(r.deadlocked);
  EXPECT_GT(r.trapped_bytes, 0);
}

TEST(RoutingLoopSmoke, BelowThresholdDoesNotDeadlock) {
  RoutingLoopParams p;
  p.inject = Rate::gbps(4);  // threshold is 5 Gbps
  Scenario s = make_routing_loop(p);
  const RunSummary r = run_and_check(s, 5_ms, 10_ms);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_EQ(r.trapped_bytes, 0);
}

TEST(FourSwitchSmoke, TwoFlowsNoDeadlock) {
  FourSwitchParams p;
  Scenario s = make_four_switch(p);
  const RunSummary r = run_and_check(s, 10_ms, 10_ms);
  EXPECT_FALSE(r.deadlocked);
  // Both flows should have made progress (about B/2 each).
  for (const auto& [flow, bytes] : r.delivered) {
    EXPECT_GT(bytes, 0) << "flow " << flow;
  }
}

TEST(FourSwitchSmoke, ThreeFlowsDeadlock) {
  FourSwitchParams p;
  p.with_flow3 = true;
  Scenario s = make_four_switch(p);
  const RunSummary r = run_and_check(s, 20_ms, 10_ms);
  EXPECT_TRUE(r.deadlocked);
}

TEST(RingDeadlockSmoke, ThreeSwitchRingDeadlocks) {
  RingDeadlockParams p;
  Scenario s = make_ring_deadlock(p);
  const RunSummary r = run_and_check(s, 5_ms, 10_ms);
  EXPECT_TRUE(r.deadlocked);
}

}  // namespace
}  // namespace dcdl::scenarios
