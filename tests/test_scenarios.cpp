// Structural unit tests of the scenario builders: the canonical setups
// must match the paper's figures exactly (flows, paths, labels, knobs).
#include <gtest/gtest.h>

#include "dcdl/device/host.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/scenarios/scenario.hpp"

namespace dcdl::scenarios {
namespace {

using namespace dcdl::literals;

TEST(ScenarioBuilders, FourSwitchStructure) {
  Scenario s = make_four_switch(FourSwitchParams{});
  EXPECT_EQ(s.topo->switches().size(), 4u);
  EXPECT_EQ(s.topo->hosts().size(), 4u);
  EXPECT_EQ(s.flows.size(), 2u);
  ASSERT_EQ(s.cycle_queues.size(), 4u);
  EXPECT_EQ(s.cycle_labels,
            (std::vector<std::string>{"L1", "L2", "L3", "L4"}));
  // L1 is B's ingress from A.
  EXPECT_EQ(s.cycle_queues[0].node, s.node("B"));
  EXPECT_EQ(s.topo->peer(s.cycle_queues[0].node, s.cycle_queues[0].port)
                .peer_node,
            s.node("A"));
}

TEST(ScenarioBuilders, FourSwitchFlowPathsArePinned) {
  Scenario s = make_four_switch(FourSwitchParams{});
  // Flow 1 at A must leave toward B (not D), per Figure 3(a).
  const auto eg = s.net->switch_at(s.node("A"))
                      .routes()
                      .lookup(1, s.flows[0].dst_host);
  ASSERT_TRUE(eg.has_value());
  EXPECT_EQ(s.topo->peer(s.node("A"), *eg).peer_node, s.node("B"));
  // Flow 2 at A must leave toward B as well (its path D->A->B).
  const auto eg2 = s.net->switch_at(s.node("A"))
                       .routes()
                       .lookup(2, s.flows[1].dst_host);
  ASSERT_TRUE(eg2.has_value());
  EXPECT_EQ(s.topo->peer(s.node("A"), *eg2).peer_node, s.node("B"));
}

TEST(ScenarioBuilders, FourSwitchFlow3Knobs) {
  FourSwitchParams p;
  p.with_flow3 = true;
  p.flow3_limit = Rate::gbps(2);
  Scenario s = make_four_switch(p);
  EXPECT_EQ(s.flows.size(), 3u);
  EXPECT_EQ(s.topo->hosts().size(), 6u);
  // The shaper lives on B's ingress from flow 3's host.
  const NodeId B = s.node("B");
  const NodeId hB3 = s.node("hB3");
  const auto port = s.topo->port_towards(B, hB3);
  ASSERT_TRUE(port.has_value());
  // Greedy host + 2 Gbps shaper: held bytes accumulate at B's ingress.
  s.sim->run_until(1_ms);
  EXPECT_GT(s.net->switch_at(B).shaper_held_bytes(*port), 0);
}

TEST(ScenarioBuilders, RoutingLoopStructure) {
  RoutingLoopParams p;
  p.loop_len = 4;
  Scenario s = make_routing_loop(p);
  EXPECT_EQ(s.topo->switches().size(), 4u);
  EXPECT_EQ(s.cycle_queues.size(), 4u);
  EXPECT_EQ(s.flows.size(), 1u);
  // The sink host's routes loop: no forwarding loop detector needed here —
  // the BDG marks the flow as looping (covered in test_bdg).
}

TEST(ScenarioBuilders, RingDeadlockSpanValidation) {
  RingDeadlockParams p;
  p.num_switches = 4;
  p.span = 3;
  Scenario s = make_ring_deadlock(p);
  EXPECT_EQ(s.flows.size(), 4u);
  EXPECT_DEATH(
      {
        RingDeadlockParams bad;
        bad.num_switches = 3;
        bad.span = 3;  // full wrap unsupported
        make_ring_deadlock(bad);
      },
      "precondition");
}

TEST(ScenarioBuilders, NodeLookupByName) {
  Scenario s = make_four_switch(FourSwitchParams{});
  EXPECT_EQ(s.topo->node(s.node("A")).name, "A");
  EXPECT_EQ(s.topo->node(s.node("hD")).name, "hD");
  EXPECT_DEATH(s.node("nonexistent"), "precondition");
}

TEST(ScenarioBuilders, IncastSenderCount) {
  IncastParams p;
  p.num_senders = 5;
  Scenario s = make_incast(p);
  EXPECT_EQ(s.flows.size(), 5u);
  // All target the same receiver.
  for (const FlowSpec& f : s.flows) {
    EXPECT_EQ(f.dst_host, s.flows[0].dst_host);
    EXPECT_NE(f.src_host, f.dst_host);
  }
}

TEST(ScenarioBuilders, TransientLoopWindowTiming) {
  TransientLoopParams p;
  p.inject = Rate::gbps(3);
  p.loop_start = 2_ms;
  p.loop_duration = 1_ms;
  Scenario s = make_transient_loop(p);
  const NodeId dst = s.flows[0].dst_host;
  // Before the window: steady delivery.
  s.sim->run_until(2_ms);
  const auto pre = s.net->host_at(dst).delivered_bytes(1);
  EXPECT_GT(pre, 0);
  // During the window: delivery stalls (everything loops).
  s.sim->run_until(3_ms);
  const auto mid = s.net->host_at(dst).delivered_bytes(1);
  EXPECT_LE(mid - pre, 100'000) << "only in-flight packets drain";
  // After repair (below threshold): delivery resumes.
  s.sim->run_until(5_ms);
  EXPECT_GT(s.net->host_at(dst).delivered_bytes(1), mid);
}

TEST(ScenarioBuilders, ValleyViolationLabels) {
  Scenario s = make_valley_violation(ValleyViolationParams{});
  ASSERT_EQ(s.cycle_labels.size(), 4u);
  EXPECT_EQ(s.cycle_labels[0], "L1->S1");
  EXPECT_EQ(s.flows.size(), 3u);
}

}  // namespace
}  // namespace dcdl::scenarios
