// SDN update model: naive scheduling can pass through loop states; the
// ordered (downstream-first) schedule never does.
#include <gtest/gtest.h>

#include "dcdl/device/switch.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/routing/sdn.hpp"
#include "dcdl/topo/generators.hpp"

namespace dcdl::routing {
namespace {

using namespace dcdl::literals;
using namespace dcdl::topo;

// Line of 4 switches; dst at the right end. Initially everything points
// right. The "update" moves S1 and S2 onto the path via the other side of
// a ring (we use a ring so an alternative direction exists).
struct Fixture {
  Simulator sim;
  RingTopo ring = make_ring(4, 1);
  Topology topo = ring.topo;
  std::unique_ptr<Network> net;
  NodeId dst;

  Fixture() {
    net = std::make_unique<Network>(sim, topo, NetConfig{});
    install_shortest_paths(*net, /*ecmp=*/false);
    dst = ring.hosts[2][0];  // host on S2
  }

  PortId towards(NodeId from, NodeId to) {
    return *topo.port_towards(from, to);
  }

  /// A plan that reverses S0 and S1's direction for dst: before, S0->S1->S2;
  /// after, S0->S3->S2 and S1->S0->S3->S2. Applying S1's change before S0's
  /// creates a transient S0<->S1 loop.
  SdnUpdatePlan reversal_plan() {
    SdnUpdatePlan plan(dst);
    plan.add(ring.switches[1], towards(ring.switches[1], ring.switches[0]));
    plan.add(ring.switches[0], towards(ring.switches[0], ring.switches[3]));
    return plan;
  }
};

TEST(Sdn, NaiveUpdateCanCreateTransientLoop) {
  // Try seeds until the unlucky ordering (S1 first) occurs, then verify a
  // loop exists in the window.
  bool saw_loop = false;
  for (std::uint64_t seed = 1; seed <= 10 && !saw_loop; ++seed) {
    Fixture fx;
    SdnUpdatePlan plan = fx.reversal_plan();
    plan.apply_naive(*fx.net, 1_ms, 1_ms, seed);
    // Sample for loops every 50 us through the update window.
    for (Time t = 1_ms; t <= 2_ms + 100_us; t += 50_us) {
      fx.sim.run_until(t);
      if (find_forwarding_loop(*fx.net, fx.dst).has_value()) {
        saw_loop = true;
        break;
      }
    }
  }
  EXPECT_TRUE(saw_loop);
}

TEST(Sdn, NaiveUpdateEventuallyConverges) {
  Fixture fx;
  SdnUpdatePlan plan = fx.reversal_plan();
  const Time done = plan.apply_naive(*fx.net, 1_ms, 1_ms, 3);
  fx.sim.run_until(done + 1_ms);
  EXPECT_FALSE(find_forwarding_loop(*fx.net, fx.dst).has_value());
  // Final state: S0 points at S3.
  const auto eg =
      fx.net->switch_at(fx.ring.switches[0]).routes().lookup(0, fx.dst);
  ASSERT_TRUE(eg.has_value());
  EXPECT_EQ(fx.topo.peer(fx.ring.switches[0], *eg).peer_node,
            fx.ring.switches[3]);
}

TEST(Sdn, OrderedUpdateIsAlwaysLoopFree) {
  Fixture fx;
  SdnUpdatePlan plan = fx.reversal_plan();
  plan.apply_ordered(*fx.net, 1_ms, 200_us);
  // Check at a fine grain across the whole update window.
  for (Time t = 900_us; t <= 2_ms; t += 10_us) {
    fx.sim.run_until(t);
    EXPECT_FALSE(find_forwarding_loop(*fx.net, fx.dst).has_value())
        << "loop at " << t.to_string();
  }
}

TEST(Sdn, OrderedUpdateReachesSameFinalState) {
  Fixture naive_fx, ordered_fx;
  {
    SdnUpdatePlan plan = naive_fx.reversal_plan();
    const Time done = plan.apply_naive(*naive_fx.net, 1_ms, 500_us, 7);
    naive_fx.sim.run_until(done + 1_ms);
  }
  {
    SdnUpdatePlan plan = ordered_fx.reversal_plan();
    const Time done = plan.apply_ordered(*ordered_fx.net, 1_ms, 200_us);
    ordered_fx.sim.run_until(done + 1_ms);
  }
  for (const NodeId sw : naive_fx.topo.switches()) {
    EXPECT_EQ(naive_fx.net->switch_at(sw).routes().lookup(0, naive_fx.dst),
              ordered_fx.net->switch_at(sw).routes().lookup(0, ordered_fx.dst));
  }
}

TEST(Sdn, RemovalEntriesAreSupported) {
  Fixture fx;
  SdnUpdatePlan plan(fx.dst);
  plan.add(fx.ring.switches[0], std::nullopt);
  plan.apply_ordered(*fx.net, 1_ms, 0_us);
  fx.sim.run_until(2_ms);
  EXPECT_FALSE(fx.net->switch_at(fx.ring.switches[0])
                   .routes()
                   .lookup(0, fx.dst)
                   .has_value());
}

}  // namespace
}  // namespace dcdl::routing
