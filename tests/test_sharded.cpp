// Sharded-engine determinism suite.
//
// The sharded conservative engine's contract: for every shard count >= 1,
// the observable stream — every PFC transition, delivery, drop, tx-start,
// in order — is byte-identical to the single-shard run of the same
// scenario. These tests pin that contract three ways:
//   - FNV-1a digests over the full observation stream (the same fold the
//     golden-trace tests use) compared across shard counts on the paper's
//     ring, routing-loop, and a k=4 fat-tree permutation;
//   - run_and_check summaries (deadlock verdict, detection instant,
//     wait-for cycle, trapped bytes, per-flow delivered) and the rendered
//     forensics report, compared byte-for-byte;
//   - the zero-alloc steady-state invariant, re-asserted with worker
//     threads, mailboxes, and window barriers in the loop.
// Plus unit tests for the topology partitioner (cut-link enumeration on a
// hand-built line, pod integrity on a fat-tree) and the engine's stats
// surface.
//
// This binary replaces the global allocator with a counting one (same
// pattern as test_zero_alloc.cpp); the counter is atomic because shard
// workers allocate during warm-up (slab growth, mailbox capacity).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <optional>
#include <set>
#include <string>

#include "dcdl/device/host.hpp"
#include "dcdl/forensics/causality.hpp"
#include "dcdl/forensics/report.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/sim/sharded.hpp"
#include "dcdl/stats/hooks.hpp"
#include "dcdl/stats/pause_log.hpp"
#include "dcdl/topo/generators.hpp"
#include "dcdl/topo/partition.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) { return ::operator new(n); }

void* operator new(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  if (void* p = std::aligned_alloc(a, (n + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace dcdl {
namespace {

using namespace dcdl::literals;
using namespace dcdl::scenarios;

/// Order-sensitive FNV-1a over 64-bit words (mirrors test_golden_trace.cpp;
/// any reordering, retiming, or recounting of observations changes it).
class TraceDigest {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xFFu;
      h_ *= 1099511628211ULL;
    }
  }
  void event(std::uint8_t kind, Time t, std::uint64_t a, std::uint64_t b) {
    mix(kind);
    mix(static_cast<std::uint64_t>(t.ps()));
    mix(a);
    mix(b);
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ULL;
};

/// Attaches digest observers to every trace slot, runs to `run_for`, seals
/// with the executed-event count and residual buffered bytes. Identical
/// fold to the golden-trace pins — but here the constant under test is
/// "whatever shards=1 produced", not a committed literal.
std::uint64_t digest_net(Simulator& sim, Network& net, Time run_for) {
  TraceDigest d;
  Trace& tr = net.trace();
  stats::append_hook<Time, NodeId, PortId, ClassId, bool>(
      tr.pfc_state,
      [&d](Time t, NodeId node, PortId port, ClassId cls, bool paused) {
        d.event(1, t,
                (static_cast<std::uint64_t>(node) << 32) |
                    (static_cast<std::uint64_t>(port) << 8) | cls,
                paused ? 1 : 0);
      });
  stats::append_hook<Time, const Packet&>(
      tr.delivered, [&d](Time t, const Packet& pkt) {
        d.event(2, t, (static_cast<std::uint64_t>(pkt.dst) << 32) | pkt.flow,
                pkt.id);
      });
  stats::append_hook<Time, const Packet&, NodeId, DropReason>(
      tr.dropped, [&d](Time t, const Packet& pkt, NodeId node, DropReason r) {
        d.event(3, t,
                (static_cast<std::uint64_t>(node) << 32) |
                    static_cast<std::uint64_t>(r),
                pkt.id);
      });
  stats::append_hook<Time, const Packet&, NodeId, PortId>(
      tr.tx_start, [&d](Time t, const Packet& pkt, NodeId node, PortId port) {
        d.event(4, t,
                (static_cast<std::uint64_t>(node) << 32) | port, pkt.id);
      });
  sim.run_until(run_for);
  d.mix(sim.events_executed());
  d.mix(static_cast<std::uint64_t>(net.total_queued_bytes()));
  return d.value();
}

std::uint64_t ring_digest(int shards, Time run_for) {
  RingDeadlockParams p;
  p.num_switches = 6;  // 6 arcs to cut: supports 2, 4, and 8-way requests
  p.span = 2;
  std::optional<ScopedShardRequest> req;
  if (shards >= 1) req.emplace(shards);
  Scenario s = make_ring_deadlock(p);
  req.reset();
  return digest_net(*s.sim, *s.net, run_for);
}

std::uint64_t routing_loop_digest(int shards, Rate inject, Time run_for) {
  RoutingLoopParams p;
  p.inject = inject;
  std::optional<ScopedShardRequest> req;
  if (shards >= 1) req.emplace(shards);
  Scenario s = make_routing_loop(p);
  req.reset();
  return digest_net(*s.sim, *s.net, run_for);
}

/// k=4 fat-tree, all-hosts permutation traffic (the bench's throughput
/// scenario): 16 hosts, host i sends to host (i + 8) mod 16 — every flow
/// crosses pods, so every packet crosses shards under per-pod sharding.
std::uint64_t fat_tree_digest(int shards, Time run_for) {
  Simulator sim;
  const topo::FatTreeTopo ft = topo::make_fat_tree(4);
  std::optional<ScopedShardRequest> req;
  if (shards >= 1) req.emplace(shards);
  auto net = std::make_unique<Network>(sim, ft.topo, NetConfig{});
  req.reset();
  routing::install_shortest_paths(*net);
  const int n = static_cast<int>(ft.all_hosts.size());
  for (int i = 0; i < n; ++i) {
    FlowSpec f;
    f.id = static_cast<FlowId>(i + 1);
    f.src_host = ft.all_hosts[static_cast<std::size_t>(i)];
    f.dst_host = ft.all_hosts[static_cast<std::size_t>((i + n / 2) % n)];
    f.packet_bytes = 1000;
    net->host_at(f.src_host).add_flow(
        f, std::make_unique<TokenBucketPacer>(Rate::gbps(10), 2000));
  }
  return digest_net(sim, *net, run_for);
}

TEST(ShardedDigest, RingInvariantAcrossShardCounts) {
  const std::uint64_t base = ring_digest(1, 2_ms);
  EXPECT_EQ(ring_digest(2, 2_ms), base);
  EXPECT_EQ(ring_digest(4, 2_ms), base);
  EXPECT_EQ(ring_digest(8, 2_ms), base);  // clamps to 6 effective shards
}

TEST(ShardedDigest, RoutingLoopAboveBoundaryInvariant) {
  // 8 Gbps > the Eq. 3 boundary: the loop deadlocks; the pause cascade and
  // freeze order must not depend on how the two loop switches are sharded.
  const std::uint64_t base = routing_loop_digest(1, Rate::gbps(8), 2_ms);
  EXPECT_EQ(routing_loop_digest(2, Rate::gbps(8), 2_ms), base);
}

TEST(ShardedDigest, RoutingLoopBelowBoundaryInvariant) {
  // 4 Gbps: TTL drain keeps the loop alive forever — a drop-heavy stream
  // where every TTL expiry is a cross-shard arrival under 2-way sharding.
  const std::uint64_t base = routing_loop_digest(1, Rate::gbps(4), 2_ms);
  EXPECT_EQ(routing_loop_digest(2, Rate::gbps(4), 2_ms), base);
}

TEST(ShardedDigest, FatTreePermutationInvariant) {
  const std::uint64_t base = fat_tree_digest(1, 500_us);
  EXPECT_EQ(fat_tree_digest(2, 500_us), base);
  EXPECT_EQ(fat_tree_digest(4, 500_us), base);
}

// ---------------------------------------------------------------------------
// End-to-end artifact invariance: monitor verdicts and forensics reports.

struct RingOutcome {
  RunSummary summary;
  std::string forensics_text;
};

RingOutcome ring_outcome(int shards) {
  RingDeadlockParams p;
  p.num_switches = 6;
  p.span = 2;
  std::optional<ScopedShardRequest> req;
  if (shards >= 1) req.emplace(shards);
  Scenario s = make_ring_deadlock(p);
  req.reset();
  stats::PauseEventLog pauses(*s.net);
  RingOutcome out;
  out.summary = run_and_check(s, 4_ms, 2_ms);
  forensics::CausalInput in =
      forensics::input_from_pause_log(*s.topo, pauses, s.sim->now());
  in.deadlock_cycle = out.summary.cycle;
  if (out.summary.detected_at) {
    in.deadlock_at_ps = out.summary.detected_at->ps();
  }
  out.forensics_text = forensics::to_text(forensics::analyze(in));
  return out;
}

TEST(ShardedRun, SummaryAndForensicsInvariant) {
  const RingOutcome one = ring_outcome(1);
  const RingOutcome four = ring_outcome(4);

  // The ring still deadlocks when sharded — the pause cycle spans all four
  // shard boundaries and the online monitor (a control-phase poller) must
  // still see the closed wait-for cycle.
  EXPECT_TRUE(one.summary.deadlocked);
  EXPECT_TRUE(one.summary.detected_at.has_value());
  EXPECT_FALSE(one.summary.cycle.empty());

  EXPECT_EQ(four.summary.deadlocked, one.summary.deadlocked);
  EXPECT_EQ(four.summary.detected_at, one.summary.detected_at);
  EXPECT_EQ(four.summary.cycle, one.summary.cycle);
  EXPECT_EQ(four.summary.trapped_bytes, one.summary.trapped_bytes);
  EXPECT_EQ(four.summary.delivered, one.summary.delivered);
  EXPECT_EQ(four.forensics_text, one.forensics_text);
}

// ---------------------------------------------------------------------------
// Partitioner unit tests.

TEST(ShardPlan, LinePartitionCutsExactlyTheBoundaryLink) {
  // Hand-built: s0 -2us- s1 -3us- s2, one host per switch on 1 us links.
  Topology t;
  const NodeId s0 = t.add_switch("s0");
  const NodeId s1 = t.add_switch("s1");
  const NodeId s2 = t.add_switch("s2");
  const NodeId h0 = t.add_host("h0");
  const NodeId h1 = t.add_host("h1");
  const NodeId h2 = t.add_host("h2");
  t.add_link(s0, s1, Rate::gbps(40), Time{2'000'000});
  const std::uint32_t l12 = t.add_link(s1, s2, Rate::gbps(40), Time{3'000'000});
  t.add_link(s0, h0, Rate::gbps(40), Time{1'000'000});
  t.add_link(s1, h1, Rate::gbps(40), Time{1'000'000});
  t.add_link(s2, h2, Rate::gbps(40), Time{1'000'000});

  const topo::ShardPlan plan = topo::assign_shards(t, 2);
  EXPECT_EQ(plan.num_shards, 2);
  // Contiguous-block fallback: {s0, s1} | {s2}.
  EXPECT_EQ(plan.node_shard[s0], plan.node_shard[s1]);
  EXPECT_NE(plan.node_shard[s1], plan.node_shard[s2]);
  // Hosts follow their switch — host links are never cut.
  EXPECT_EQ(plan.node_shard[h0], plan.node_shard[s0]);
  EXPECT_EQ(plan.node_shard[h1], plan.node_shard[s1]);
  EXPECT_EQ(plan.node_shard[h2], plan.node_shard[s2]);
  ASSERT_EQ(plan.cut_links.size(), 1u);
  EXPECT_EQ(plan.cut_links[0].link, l12);
  EXPECT_EQ(plan.min_cut_delay, Time{3'000'000});
}

TEST(ShardPlan, FatTreePodsStayWholeAndOnlyCoreLinksAreCut) {
  const topo::FatTreeTopo ft = topo::make_fat_tree(4);
  const topo::ShardPlan plan = topo::assign_shards(ft.topo, 4);
  EXPECT_EQ(plan.num_shards, 4);

  std::set<std::uint32_t> pod_shards;
  for (int p = 0; p < 4; ++p) {
    const std::uint32_t s = plan.node_shard[ft.edge[p][0]];
    for (const NodeId sw : ft.edge[p]) EXPECT_EQ(plan.node_shard[sw], s);
    for (const NodeId sw : ft.agg[p]) EXPECT_EQ(plan.node_shard[sw], s);
    pod_shards.insert(s);
  }
  EXPECT_EQ(pod_shards.size(), 4u) << "pods must land on distinct shards";

  // Every cut link is an agg<->core link: pods are internally whole and
  // hosts follow their edge switch, so only the top tier can be severed.
  const int core_tier = ft.topo.node(ft.core[0]).tier;
  EXPECT_FALSE(plan.cut_links.empty());
  for (const topo::CutLink& c : plan.cut_links) {
    const LinkSpec& l = ft.topo.link(c.link);
    EXPECT_TRUE(ft.topo.is_switch(l.a) && ft.topo.is_switch(l.b));
    EXPECT_TRUE(ft.topo.node(l.a).tier == core_tier ||
                ft.topo.node(l.b).tier == core_tier);
  }
  EXPECT_EQ(plan.min_cut_delay, Time{1'000'000});
}

TEST(ShardPlan, EffectiveShardCountIsClamped) {
  // More shards requested than structural units: clamp to the unit count.
  const topo::RingTopo line = topo::make_line(2, 1);
  const topo::ShardPlan plan = topo::assign_shards(line.topo, 8);
  EXPECT_EQ(plan.num_shards, 2);

  // A single switch cannot shard at all: one shard, nothing cut.
  Topology t;
  const NodeId sw = t.add_switch("s");
  const NodeId h = t.add_host("h");
  t.add_link(sw, h);
  const topo::ShardPlan single = topo::assign_shards(t, 4);
  EXPECT_EQ(single.num_shards, 1);
  EXPECT_TRUE(single.cut_links.empty());
  EXPECT_EQ(single.min_cut_delay, Time::max());
}

TEST(ShardPlan, ScopedRequestNestsAndRestores) {
  EXPECT_EQ(ScopedShardRequest::active(), 0);
  {
    ScopedShardRequest outer(4);
    EXPECT_EQ(ScopedShardRequest::active(), 4);
    {
      ScopedShardRequest inner(2);
      EXPECT_EQ(ScopedShardRequest::active(), 2);
    }
    EXPECT_EQ(ScopedShardRequest::active(), 4);
  }
  EXPECT_EQ(ScopedShardRequest::active(), 0);
}

// ---------------------------------------------------------------------------
// Engine wiring and statistics surface.

TEST(ShardedEngineStats, WindowsAndCrossShardTrafficAreCounted) {
  RingDeadlockParams p;
  p.num_switches = 6;
  p.span = 2;
  std::optional<ScopedShardRequest> req{std::in_place, 4};
  Scenario s = make_ring_deadlock(p);
  req.reset();

  ASSERT_TRUE(s.net->sharded());
  ShardedEngine& eng = s.net->engine();
  EXPECT_EQ(eng.num_shards(), 4);
  EXPECT_EQ(s.net->shard_plan().num_shards, 4);
  EXPECT_FALSE(s.net->shard_plan().cut_links.empty());
  // Ring links propagate in 1 us and no out-of-band feedback is enabled,
  // so the conservative lookahead is exactly the cut-link delay.
  EXPECT_EQ(eng.lookahead(), Time{1'000'000});

  s.sim->run_until(1_ms);

  const ShardedEngine::Stats& st = eng.stats();
  EXPECT_GT(st.windows, 0u);
  EXPECT_GE(st.device_passes, st.windows);
  EXPECT_GT(st.cross_shard_events, 0u)
      << "ring flows span shard boundaries; mailboxes cannot be idle";
  ASSERT_EQ(st.shard.size(), 4u);
  std::uint64_t executed = 0;
  for (const ShardedEngine::ShardStats& sh : st.shard) executed += sh.executed;
  EXPECT_GT(executed, 0u);
  // Shard events are credited to the control simulator's counter, so
  // events_executed() is comparable across engines and shard counts.
  EXPECT_GE(s.sim->events_executed(), executed);
}

TEST(ShardedEngineStats, LegacyConstructionStaysSingleThreaded) {
  Scenario s = make_ring_deadlock(RingDeadlockParams{});
  EXPECT_FALSE(s.net->sharded());
}

// ---------------------------------------------------------------------------
// Zero-alloc steady state, sharded edition.

TEST(ShardedZeroAlloc, RoutingLoopSteadyStateAllocatesNothing) {
  // Same regime as test_zero_alloc.cpp's headline test — below-boundary
  // routing loop in perpetual steady state — but on two shards: every
  // window crosses two barriers, every loop packet crosses a mailbox, and
  // none of it may allocate once the warm-up has grown slab, mailbox, and
  // record buffers to their high-water marks.
  RoutingLoopParams p;
  p.inject = Rate::gbps(4);
  std::optional<ScopedShardRequest> req{std::in_place, 2};
  Scenario s = make_routing_loop(p);
  req.reset();
  ASSERT_TRUE(s.net->sharded());
  ASSERT_EQ(s.net->engine().num_shards(), 2);

  s.sim->run_until(2_ms);  // warm-up: arenas and mailboxes reach high water

  const std::uint64_t events_before = s.sim->events_executed();
  const std::uint64_t allocs_before =
      g_allocs.load(std::memory_order_relaxed);
  s.sim->run_until(12_ms);
  const std::uint64_t allocs =
      g_allocs.load(std::memory_order_relaxed) - allocs_before;
  const std::uint64_t events = s.sim->events_executed() - events_before;

  ASSERT_GE(events, 100'000u) << "window too small to be meaningful";
  EXPECT_EQ(allocs, 0u) << "sharded steady state leaked heap allocations "
                           "across " << events << " events";
}

}  // namespace
}  // namespace dcdl
