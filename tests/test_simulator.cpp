#include <gtest/gtest.h>

#include <vector>

#include "dcdl/sim/simulator.hpp"

namespace dcdl {
namespace {

using namespace dcdl::literals;

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30_ns, [&] { order.push_back(3); });
  sim.schedule_at(10_ns, [&] { order.push_back(1); });
  sim.schedule_at(20_ns, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30_ns);
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(Simulator, TiesFireInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5_ns, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  Time fired = Time::zero();
  sim.schedule_at(100_ns, [&] {
    sim.schedule_in(50_ns, [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, 150_ns);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule_at(10_ns, [&] { ++fired; });
  sim.schedule_at(5_ns, [&] { sim.cancel(id); });
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelAfterFireIsHarmless) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule_at(1_ns, [&] { ++fired; });
  sim.run();
  sim.cancel(id);  // no crash, no effect
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, RunUntilAdvancesClockToDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10_ns, [&] { ++fired; });
  sim.schedule_at(100_ns, [&] { ++fired; });
  EXPECT_TRUE(sim.run_until(50_ns));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50_ns);
  // The later event still fires on the next run.
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilExecutesEventExactlyAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(50_ns, [&] { ++fired; });
  sim.run_until(50_ns);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1_ns, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2_ns, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsCanScheduleAtCurrentTime) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(10_ns, [&] {
    order.push_back(1);
    sim.schedule_in(Time::zero(), [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, PendingEventsAccountsForCancellations) {
  Simulator sim;
  const EventId a = sim.schedule_at(1_ns, [] {});
  sim.schedule_at(2_ns, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, CancelOfFiredEventLeavesNoResidue) {
  // Regression: cancelling an already-fired event used to insert its seq
  // into a tombstone set that nothing ever drained, so long-lived sims
  // (device timers follow exactly this schedule/fire/cancel pattern) grew
  // their bookkeeping without bound.
  Simulator sim;
  for (int i = 0; i < 1'000'000; ++i) {
    const EventId id = sim.schedule_in(1_ns, [] {});
    sim.run();
    sim.cancel(id);  // already fired: must be a true no-op
    if (sim.pending_events() != 0 || sim.heap_entries() != 0) {
      FAIL() << "residue after cycle " << i
             << ": pending=" << sim.pending_events()
             << " heap=" << sim.heap_entries();
    }
  }
  EXPECT_EQ(sim.events_executed(), 1'000'000u);
}

TEST(Simulator, CancelledHusksAreReclaimedOnPop) {
  // Cancel-before-fire leaves a husk in the heap; every husk must be
  // reclaimed as the clock passes it, so churn stays bounded too.
  Simulator sim;
  for (int i = 0; i < 100'000; ++i) {
    sim.schedule_in(1_ns, [] {});
    const EventId dropped = sim.schedule_in(2_ns, [] {});
    sim.cancel(dropped);
    sim.run();
    if (sim.pending_events() != 0 || sim.heap_entries() != 0) {
      FAIL() << "residue after cycle " << i
             << ": pending=" << sim.pending_events()
             << " heap=" << sim.heap_entries();
    }
  }
  EXPECT_EQ(sim.events_executed(), 100'000u);
}

TEST(Simulator, CancelAtCurrentTimeInsideRunUntil) {
  // The cancelled event sits exactly at now(); run_until must skip it and
  // reclaim the husk rather than execute it.
  Simulator sim;
  int fired = 0;
  EventId victim;
  sim.schedule_at(10_ns, [&] {
    victim = sim.schedule_in(Time::zero(), [&] { ++fired; });
    sim.cancel(victim);
  });
  sim.run_until(20_ns);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.heap_entries(), 0u);
}

TEST(Simulator, SelfCancelDuringFireIsNoOp) {
  // An event that cancels *itself* from inside its own callback. The slot
  // retires (generation bump + free-list push) before the callback runs, so
  // the cancel must be a guaranteed no-op — in particular it must not push
  // the slot onto the free list a second time, which would hand one slot to
  // two future events.
  Simulator sim;
  int fired = 0;
  int later = 0;
  EventId self;
  self = sim.schedule_at(10_ns, [&] {
    ++fired;
    sim.cancel(self);  // stale by construction: no-op
    // Likely recycles the very slot `self` pointed at (LIFO free list).
    sim.schedule_in(1_ns, [&] { ++later; });
    sim.cancel(self);  // still a no-op, even after the slot was reused
  });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(later, 1);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.heap_entries(), 0u);
}

TEST(Simulator, StaleIdDoesNotCancelRecycledSlot) {
  // A handle kept across its event's firing goes stale; once the slot is
  // recycled for a new event, cancelling through the stale handle must not
  // touch the new occupant (the generation tag disambiguates).
  Simulator sim;
  int a = 0;
  int b = 0;
  const EventId first = sim.schedule_at(1_ns, [&] { ++a; });
  sim.run();  // fires; the slot returns to the free list
  const EventId second = sim.schedule_at(2_ns, [&] { ++b; });
  ASSERT_EQ(first.slot, second.slot) << "expected LIFO slot recycling";
  ASSERT_NE(first.gen, second.gen);
  sim.cancel(first);  // stale generation: must not cancel `second`
  sim.run();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST(Simulator, SlabStaysBoundedUnderSteadyChurn) {
  // Eight self-rescheduling timers firing a million times total: the slab
  // must stay at the in-flight high-water mark (eight), not grow with
  // lifetime churn — retired slots recycle through the free list.
  Simulator sim;
  struct Churn {
    Simulator& sim;
    std::uint64_t fired = 0;
    void tick() {
      if (++fired < 1'000'000) {
        sim.schedule_in(1_ns, [this] { tick(); });
      }
    }
  } churn{sim};
  for (int i = 0; i < 8; ++i) {
    sim.schedule_in(1_ns, [&churn] { churn.tick(); });
  }
  sim.run();
  EXPECT_GE(churn.fired, 1'000'000u);
  EXPECT_LE(sim.slab_slots(), 16u);
}

TEST(SimulatorDeath, RejectsSchedulingInThePast) {
  Simulator sim;
  sim.schedule_at(10_ns, [] {});
  sim.run();
  EXPECT_DEATH(sim.schedule_at(5_ns, [] {}), "precondition");
}

}  // namespace
}  // namespace dcdl
