// Intelligent rate limiting (§4's future work): the planner shapes only
// cycle-crossing flows, de-saturates the dependency cycle, and prevents
// the deadlock — without over-punishing innocent traffic.
#include <gtest/gtest.h>

#include "dcdl/device/host.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/mitigation/smart_limiter.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/scenarios/scenario.hpp"

namespace dcdl::mitigation {
namespace {

using namespace dcdl::literals;
using namespace dcdl::scenarios;

TEST(FlowShaper, SwitchSideShapingBackpressuresTheWholeIngress) {
  // Two greedy flows share an ingress; a switch-side shaper on flow 1
  // holds its packets in the switch buffer, so the ingress counter pins at
  // Xoff and PFC throttles the INNOCENT flow too — the measured reason the
  // planner installs limits at the source NIC instead.
  Simulator sim;
  Topology topo;
  const NodeId s0 = topo.add_switch("s0");
  const NodeId s1 = topo.add_switch("s1");
  const NodeId src = topo.add_host("src");
  const NodeId d1 = topo.add_host("d1");
  const NodeId d2 = topo.add_host("d2");
  topo.add_link(s0, s1, Rate::gbps(40), 1_us);
  topo.add_link(s0, src, Rate::gbps(40), 1_us);
  topo.add_link(s1, d1, Rate::gbps(40), 1_us);
  topo.add_link(s1, d2, Rate::gbps(40), 1_us);
  Network net(sim, topo, NetConfig{});
  dcdl::routing::install_shortest_paths(net);
  for (const FlowId id : {1u, 2u}) {
    FlowSpec f;
    f.id = id;
    f.src_host = src;
    f.dst_host = id == 1 ? d1 : d2;
    f.packet_bytes = 1000;
    net.host_at(src).add_flow(f);
  }
  net.switch_at(s0).set_flow_shaper(1, Rate::gbps(3), 2000);
  sim.run_until(5_ms);
  const double g1 =
      static_cast<double>(net.host_at(d1).delivered_bytes(1)) * 8 / 5e-3 / 1e9;
  const double g2 =
      static_cast<double>(net.host_at(d2).delivered_bytes(2)) * 8 / 5e-3 / 1e9;
  EXPECT_NEAR(g1, 3.0, 0.5);
  EXPECT_LT(g2, 10.0) << "PFC backpressure collaterally throttles flow 2";
  EXPECT_EQ(net.drops(DropReason::kBufferOverflow), 0u);
}

TEST(FlowShaper, SourceSideShapingSparesInnocentFlows) {
  // Same setup, but the limit lives at the source NIC: flow 2 keeps the
  // leftover bandwidth.
  Simulator sim;
  Topology topo;
  const NodeId s0 = topo.add_switch("s0");
  const NodeId s1 = topo.add_switch("s1");
  const NodeId src = topo.add_host("src");
  const NodeId d1 = topo.add_host("d1");
  const NodeId d2 = topo.add_host("d2");
  topo.add_link(s0, s1, Rate::gbps(40), 1_us);
  topo.add_link(s0, src, Rate::gbps(40), 1_us);
  topo.add_link(s1, d1, Rate::gbps(40), 1_us);
  topo.add_link(s1, d2, Rate::gbps(40), 1_us);
  Network net(sim, topo, NetConfig{});
  dcdl::routing::install_shortest_paths(net);
  for (const FlowId id : {1u, 2u}) {
    FlowSpec f;
    f.id = id;
    f.src_host = src;
    f.dst_host = id == 1 ? d1 : d2;
    f.packet_bytes = 1000;
    net.host_at(src).add_flow(f);
  }
  net.host_at(src).limit_flow(1, Rate::gbps(3), 2000);
  sim.run_until(5_ms);
  const double g1 =
      static_cast<double>(net.host_at(d1).delivered_bytes(1)) * 8 / 5e-3 / 1e9;
  const double g2 =
      static_cast<double>(net.host_at(d2).delivered_bytes(2)) * 8 / 5e-3 / 1e9;
  EXPECT_NEAR(g1, 3.0, 0.5);
  EXPECT_GT(g2, 30.0) << "the innocent flow keeps the leftover bandwidth";
}

TEST(SmartLimiter, PlansNothingForSafeConfigurations) {
  Scenario s = make_four_switch(FourSwitchParams{});  // Figure 3: safe
  const RateLimitPlan plan = plan_rate_limits(*s.net, s.flows);
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.untouched.size(), 2u);
}

TEST(SmartLimiter, PreventsTheFigure4Deadlock) {
  FourSwitchParams p;
  p.with_flow3 = true;
  Scenario s = make_four_switch(p);
  const RateLimitPlan plan = plan_rate_limits(*s.net, s.flows);
  ASSERT_FALSE(plan.empty());
  apply_rate_limits(*s.net, plan);
  const RunSummary r = run_and_check(s, 20_ms, 10_ms);
  EXPECT_FALSE(r.deadlocked);
}

TEST(SmartLimiter, PlannedConfigurationIsCertifiablySlack) {
  FourSwitchParams p;
  p.with_flow3 = true;
  Scenario s = make_four_switch(p);
  const RateLimitPlan plan = plan_rate_limits(*s.net, s.flows);
  // Re-assess with the planned caps as demands: >= 2 slack links.
  std::vector<Rate> caps(s.flows.size(), Rate::zero());
  for (const auto& a : plan.actions) {
    for (std::size_t i = 0; i < s.flows.size(); ++i) {
      if (s.flows[i].id == a.flow) caps[i] = a.rate;
    }
  }
  const auto risk = analysis::assess_deadlock_risk(*s.net, s.flows, caps);
  ASSERT_EQ(risk.cycles.size(), 1u);
  EXPECT_GE(risk.cycles[0].slack_links, 2);
  EXPECT_FALSE(risk.deadlock_reachable());
}

TEST(SmartLimiter, ShapedFlowsKeepMostOfTheirShare) {
  // The point of "intelligent": the plan bounds flows near their fair
  // share (>= 85% of a saturated link split), not to a trickle.
  FourSwitchParams p;
  p.with_flow3 = true;
  Scenario s = make_four_switch(p);
  const RateLimitPlan plan = plan_rate_limits(*s.net, s.flows);
  for (const auto& a : plan.actions) {
    EXPECT_GE(a.rate.as_gbps(), 15.0) << "flow " << a.flow;
  }
  apply_rate_limits(*s.net, plan);
  const RunSummary r = run_and_check(s, 20_ms, 10_ms);
  for (const auto& [flow, bytes] : r.delivered) {
    const double gbps = static_cast<double>(bytes) * 8 / 20e-3 / 1e9;
    EXPECT_GT(gbps, 12.0) << "flow " << flow;
  }
}

TEST(SmartLimiter, LeavesLoopsToTheBoundaryModel) {
  // A routing-loop cycle: the planner shapes the looping flow at its first
  // switch (the only crosser), keeping the loop below saturation.
  RoutingLoopParams p;
  p.inject = Rate::zero();  // greedy
  Scenario s = make_routing_loop(p);
  const RateLimitPlan plan = plan_rate_limits(*s.net, s.flows);
  ASSERT_FALSE(plan.empty());
  apply_rate_limits(*s.net, plan);
  const RunSummary r = run_and_check(s, 10_ms, 15_ms);
  EXPECT_FALSE(r.deadlocked);
}

}  // namespace
}  // namespace dcdl::mitigation
