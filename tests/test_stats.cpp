// Statistics layer: pause-event log semantics, occupancy samplers,
// throughput meters, CSV output.
#include <gtest/gtest.h>

#include <cstdio>

#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/stats/csv.hpp"
#include "dcdl/stats/pause_log.hpp"
#include "dcdl/stats/sampler.hpp"
#include "dcdl/stats/throughput.hpp"

namespace dcdl::stats {
namespace {

using namespace dcdl::literals;
using namespace dcdl::scenarios;

TEST(PauseLog, IntervalsPairPausesWithResumes) {
  Scenario s = make_four_switch(FourSwitchParams{});
  PauseEventLog log(*s.net);
  s.sim->run_until(5_ms);
  // L2 (ingress at C from B) pauses intermittently in the two-flow case.
  const QueueKey l2 = s.cycle_queues[1];
  const auto intervals = log.intervals(l2, s.sim->now());
  ASSERT_GT(intervals.size(), 10u);
  Time prev_end = Time::zero();
  for (const auto& [b, e] : intervals) {
    EXPECT_LT(b, e);
    EXPECT_GE(b, prev_end);
    prev_end = e;
  }
  EXPECT_EQ(log.pause_count(l2), intervals.size());
}

TEST(PauseLog, TotalPausedMatchesIntervalSum) {
  Scenario s = make_four_switch(FourSwitchParams{});
  PauseEventLog log(*s.net);
  s.sim->run_until(5_ms);
  const QueueKey l2 = s.cycle_queues[1];
  Time sum = Time::zero();
  for (const auto& [b, e] : log.intervals(l2, s.sim->now())) sum += e - b;
  EXPECT_EQ(sum, log.total_paused(l2, s.sim->now()));
  EXPECT_GT(sum, Time::zero());
  EXPECT_LT(sum, s.sim->now());
}

TEST(PauseLog, AllPausedDetection) {
  // Figure 4: the deadlock case has an instant where all four cycle links
  // are paused; Figure 3 never does.
  {
    FourSwitchParams p;
    p.with_flow3 = true;
    Scenario s = make_four_switch(p);
    PauseEventLog log(*s.net);
    s.sim->run_until(20_ms);
    EXPECT_TRUE(log.ever_all_paused(s.cycle_queues, s.sim->now()));
  }
  {
    Scenario s = make_four_switch(FourSwitchParams{});
    PauseEventLog log(*s.net);
    s.sim->run_until(20_ms);
    EXPECT_FALSE(log.ever_all_paused(s.cycle_queues, s.sim->now()));
  }
}

TEST(PauseLog, PausedAtEndTracksLastTransition) {
  FourSwitchParams p;
  p.with_flow3 = true;
  Scenario s = make_four_switch(p);
  PauseEventLog log(*s.net);
  s.sim->run_until(20_ms);  // deadlocked: cycle queues pinned
  for (const auto& key : s.cycle_queues) {
    EXPECT_TRUE(log.paused_at_end(key));
  }
}

TEST(Sampler, SamplesAtRequestedPeriod) {
  Scenario s = make_four_switch(FourSwitchParams{});
  OccupancySampler sampler(
      *s.net, {{s.node("A"), s.cycle_queues[3].port, 0, std::nullopt}}, 1_us);
  sampler.start(Time::zero(), 1_ms);
  s.sim->run_until(2_ms);
  // (0, 1, ..., 1000) us inclusive.
  EXPECT_EQ(sampler.series(0).size(), 1001u);
  EXPECT_EQ(sampler.series(0)[5].t, 5_us);
}

TEST(Sampler, PerFlowViewIsSubsetOfQueue) {
  Scenario s = make_four_switch(FourSwitchParams{});
  const auto key = s.cycle_queues[3];  // A's ingress from D (flow 2)
  OccupancySampler sampler(*s.net,
                           {{key.node, key.port, 0, std::nullopt},
                            {key.node, key.port, 0, FlowId{2}}},
                           1_us);
  sampler.start(Time::zero(), 5_ms);
  s.sim->run_until(5_ms);
  for (std::size_t i = 0; i < sampler.series(0).size(); ++i) {
    EXPECT_LE(sampler.series(1)[i].bytes, sampler.series(0)[i].bytes);
  }
  EXPECT_GT(sampler.max_bytes(1), 0);
}

TEST(Throughput, AverageRateOverWindow) {
  Scenario s = make_four_switch(FourSwitchParams{});
  ThroughputMeter meter(*s.net, 1_ms);
  s.sim->run_until(10_ms);
  // Flows 1 and 2 settle near B/2 = 20 Gbps.
  for (const FlowId f : {1u, 2u}) {
    const Rate r = meter.average_rate(f, 2_ms, 10_ms);
    EXPECT_NEAR(r.as_gbps(), 20.0, 2.0) << "flow " << f;
  }
  EXPECT_EQ(meter.delivered_bytes(1) + meter.delivered_bytes(2),
            meter.total_delivered_bytes());
  EXPECT_GT(meter.delivered_packets(1), 0u);
}

TEST(Throughput, WindowSeriesSumsToTotal) {
  Scenario s = make_four_switch(FourSwitchParams{});
  ThroughputMeter meter(*s.net, 1_ms);
  s.sim->run_until(10_ms);
  std::int64_t sum = 0;
  for (const auto w : meter.window_series(1)) sum += w;
  EXPECT_EQ(sum, meter.delivered_bytes(1));
}

TEST(Throughput, UnknownFlowIsZero) {
  Scenario s = make_four_switch(FourSwitchParams{});
  ThroughputMeter meter(*s.net);
  EXPECT_EQ(meter.delivered_bytes(999), 0);
  EXPECT_TRUE(meter.window_series(999).empty());
  EXPECT_EQ(meter.average_rate(999, Time::zero(), 1_ms).bps(), 0);
}

TEST(Csv, FormatsRowsAndSections) {
  char buf[4096] = {};
  std::FILE* f = fmemopen(buf, sizeof(buf), "w");
  ASSERT_NE(f, nullptr);
  CsvWriter csv(f);
  csv.header({"a", "b", "c"});
  csv.row({CsvWriter::num(std::int64_t{1}), CsvWriter::num(2.5), "x"});
  csv.section("part two");
  std::fclose(f);
  EXPECT_STREQ(buf, "a,b,c\n1,2.5,x\n\n# part two\n");
}

}  // namespace
}  // namespace dcdl::stats
