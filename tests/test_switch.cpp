// Unit tests of the switch data path: forwarding, ingress accounting,
// PFC threshold behaviour, TTL semantics, re-classification, shapers.
#include <gtest/gtest.h>

#include "dcdl/device/host.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/stats/pause_log.hpp"
#include "dcdl/topo/generators.hpp"

namespace dcdl {
namespace {

using namespace dcdl::literals;
using namespace dcdl::topo;

// One switch, two hosts: h0 -- S -- h1.
struct SingleSwitch {
  Simulator sim;
  Topology topo;
  NodeId s, h0, h1;
  std::unique_ptr<Network> net;

  explicit SingleSwitch(NetConfig cfg = {}) {
    s = topo.add_switch("S");
    h0 = topo.add_host("h0");
    h1 = topo.add_host("h1");
    topo.add_link(s, h0, Rate::gbps(40), 1_us);
    topo.add_link(s, h1, Rate::gbps(40), 1_us);
    net = std::make_unique<Network>(sim, topo, cfg);
    routing::install_shortest_paths(*net);
  }

  FlowSpec flow(FlowId id, Rate rate = Rate::zero()) {
    FlowSpec f;
    f.id = id;
    f.src_host = h0;
    f.dst_host = h1;
    f.packet_bytes = 1000;
    std::unique_ptr<Pacer> pacer;
    if (!rate.is_zero()) pacer = std::make_unique<TokenBucketPacer>(rate, 1000);
    net->host_at(h0).add_flow(f, std::move(pacer));
    return f;
  }
};

TEST(Switch, ForwardsHostToHost) {
  SingleSwitch fx;
  fx.flow(1, Rate::gbps(10));
  fx.sim.run_until(1_ms);
  // 10 Gbps for 1 ms = 1.25 MB; minus the pipeline fill.
  const auto delivered = fx.net->host_at(fx.h1).delivered_bytes(1);
  EXPECT_GT(delivered, 1'200'000);
  EXPECT_LE(delivered, 1'250'000);
  EXPECT_EQ(fx.net->drops(DropReason::kBufferOverflow), 0u);
}

TEST(Switch, GreedyFlowSaturatesLine) {
  SingleSwitch fx;
  fx.flow(1);
  fx.sim.run_until(1_ms);
  // 40 Gbps for 1 ms = 5 MB, minus startup.
  EXPECT_GT(fx.net->host_at(fx.h1).delivered_bytes(1), 4'900'000);
}

TEST(Switch, IngressAccountingReturnsToZero) {
  SingleSwitch fx;
  fx.flow(1, Rate::gbps(10));
  fx.net->host_at(fx.h0).stop_all_flows();
  fx.sim.run_until(1_ms);
  const auto& sw = fx.net->switch_at(fx.s);
  for (PortId p = 0; p < sw.num_ports(); ++p) {
    EXPECT_EQ(sw.ingress_bytes(p, 0), 0);
  }
  EXPECT_EQ(sw.total_buffered(), 0);
}

TEST(Switch, NoRouteDropsAndFreesBuffer) {
  SingleSwitch fx;
  // A flow to an address nobody routes.
  FlowSpec f;
  f.id = 9;
  f.src_host = fx.h0;
  f.dst_host = fx.h0;  // self; switch has a route... use a bogus dst
  f.dst_host = 12345;  // unknown node id: lookup fails at the switch
  f.packet_bytes = 1000;
  fx.net->host_at(fx.h0).add_flow(
      f, std::make_unique<TokenBucketPacer>(Rate::gbps(1), 1000));
  fx.sim.run_until(100_us);
  EXPECT_GT(fx.net->drops(DropReason::kNoRoute), 0u);
  EXPECT_EQ(fx.net->switch_at(fx.s).total_buffered(), 0);
}

TEST(Switch, PfcPausesSourceWhenEgressOversubscribed) {
  // Two senders to one receiver: the receiver link is the bottleneck, so
  // ingress counters grow and PFC pauses the hosts; nothing is dropped.
  Simulator sim;
  Topology topo;
  const NodeId s = topo.add_switch("S");
  const NodeId a = topo.add_host("a");
  const NodeId b = topo.add_host("b");
  const NodeId dst = topo.add_host("dst");
  topo.add_link(s, a, Rate::gbps(40), 1_us);
  topo.add_link(s, b, Rate::gbps(40), 1_us);
  topo.add_link(s, dst, Rate::gbps(40), 1_us);
  Network net(sim, topo, NetConfig{});
  routing::install_shortest_paths(net);
  stats::PauseEventLog log(net);
  for (const NodeId src : {a, b}) {
    FlowSpec f;
    f.id = src;
    f.src_host = src;
    f.dst_host = dst;
    f.packet_bytes = 1000;
    net.host_at(src).add_flow(f);
  }
  sim.run_until(5_ms);
  EXPECT_GT(log.events().size(), 0u);
  EXPECT_EQ(net.drops(DropReason::kBufferOverflow), 0u);
  // Both hosts were paused at some point.
  EXPECT_GT(log.pause_count(stats::QueueKey{s, 0, 0}), 0u);
  EXPECT_GT(log.pause_count(stats::QueueKey{s, 1, 0}), 0u);
  // Fair split: each flow ~20 Gbps of the 40 Gbps receiver link.
  const auto da = net.host_at(dst).delivered_bytes(a);
  const auto db = net.host_at(dst).delivered_bytes(b);
  EXPECT_NEAR(static_cast<double>(da) / static_cast<double>(db), 1.0, 0.05);
  EXPECT_GT(da + db, 11'000'000);  // close to 12.5 MB line-rate total
}

TEST(Switch, XoffRespectedWithinHeadroom) {
  // Occupancy may exceed Xoff only by the in-flight data of the PFC
  // reaction time: rate * (2 * delay + pause serialization + one packet).
  SingleSwitch fx;
  fx.flow(1);  // greedy into a 40G egress: no congestion, tiny queues
  Simulator& sim = fx.sim;
  sim.run_until(2_ms);
  const auto& sw = fx.net->switch_at(fx.s);
  const std::int64_t headroom =
      bytes_in(Rate::gbps(40), 2 * 1_us) + 2000 + 64;
  for (PortId p = 0; p < sw.num_ports(); ++p) {
    EXPECT_LE(sw.ingress_bytes(p, 0),
              fx.net->config().pfc.xoff_bytes + headroom);
  }
}

TEST(Switch, TtlExpiredPacketsAreDropped) {
  // Three switches in a line; TTL 1 survives one switch-to-switch hop but
  // is dropped at the second forwarding decision.
  Simulator sim;
  const RingTopo line = make_line(3, 1);
  Topology topo = line.topo;
  Network net(sim, topo, NetConfig{});
  routing::install_shortest_paths(net);
  FlowSpec f;
  f.id = 1;
  f.src_host = line.hosts[0][0];
  f.dst_host = line.hosts[2][0];
  f.packet_bytes = 1000;
  f.ttl = 1;  // needs 2 switch-to-switch hops: S0->S1, S1->S2
  net.host_at(f.src_host).add_flow(
      f, std::make_unique<TokenBucketPacer>(Rate::gbps(1), 1000));
  sim.run_until(200_us);
  EXPECT_EQ(net.host_at(f.dst_host).delivered_packets(1), 0u);
  EXPECT_GT(net.drops(DropReason::kTtlExpired), 0u);
}

TEST(Switch, TtlSufficientForPathIsDelivered) {
  Simulator sim;
  const RingTopo line = make_line(3, 1);
  Topology topo = line.topo;
  Network net(sim, topo, NetConfig{});
  routing::install_shortest_paths(net);
  FlowSpec f;
  f.id = 1;
  f.src_host = line.hosts[0][0];
  f.dst_host = line.hosts[2][0];
  f.packet_bytes = 1000;
  f.ttl = 2;  // exactly the number of switch-to-switch hops
  net.host_at(f.src_host).add_flow(
      f, std::make_unique<TokenBucketPacer>(Rate::gbps(1), 1000));
  sim.run_until(200_us);
  EXPECT_GT(net.host_at(f.dst_host).delivered_packets(1), 0u);
  EXPECT_EQ(net.drops(DropReason::kTtlExpired), 0u);
}

TEST(Switch, ReclassHookSetsDepartureClass) {
  // hop_class-style mapper: packets leave the first switch in class 1.
  NetConfig cfg;
  cfg.num_classes = 2;
  cfg.reclass = [](const Packet&, NodeId) -> ClassId { return 1; };
  Simulator sim;
  const RingTopo line = make_line(2, 1);
  Topology topo = line.topo;
  Network net(sim, topo, cfg);
  routing::install_shortest_paths(net);
  FlowSpec f;
  f.id = 1;
  f.src_host = line.hosts[0][0];
  f.dst_host = line.hosts[1][0];
  f.packet_bytes = 1000;
  f.prio = 0;
  net.host_at(f.src_host).add_flow(
      f, std::make_unique<TokenBucketPacer>(Rate::gbps(1), 1000));
  // Track classes seen at the second switch's ingress from the first.
  bool saw_class1_arrival = false;
  net.trace().tx_start = [&](Time, const Packet& pkt, NodeId node, PortId) {
    if (node == line.switches[0] && pkt.prio == 1) saw_class1_arrival = true;
  };
  sim.run_until(100_us);
  EXPECT_TRUE(saw_class1_arrival);
  // And the second switch accounted it in class 1.
  EXPECT_GT(net.switch_at(line.switches[1]).departures(0, 1), 0u);
}

TEST(Switch, IngressShaperLimitsThroughput) {
  SingleSwitch fx;
  fx.flow(1);  // greedy
  // Limit everything arriving from h0 to 5 Gbps.
  const PortId from_h0 = *fx.topo.port_towards(fx.s, fx.h0);
  fx.net->switch_at(fx.s).set_ingress_shaper(from_h0, Rate::gbps(5), 1000);
  fx.sim.run_until(2_ms);
  const auto delivered = fx.net->host_at(fx.h1).delivered_bytes(1);
  // 5 Gbps for 2 ms = 1.25 MB.
  EXPECT_NEAR(static_cast<double>(delivered), 1.25e6, 0.05e6);
  EXPECT_EQ(fx.net->drops(DropReason::kBufferOverflow), 0u);
}

TEST(Switch, ShaperBackpressuresViaPfcNotDrops) {
  SingleSwitch fx;
  fx.flow(1);  // greedy 40G into a 5G shaper
  const PortId from_h0 = *fx.topo.port_towards(fx.s, fx.h0);
  fx.net->switch_at(fx.s).set_ingress_shaper(from_h0, Rate::gbps(5), 1000);
  stats::PauseEventLog log(*fx.net);
  fx.sim.run_until(1_ms);
  EXPECT_GT(log.pause_count(stats::QueueKey{fx.s, from_h0, 0}), 0u);
  EXPECT_EQ(fx.net->drops(DropReason::kBufferOverflow), 0u);
  // Held + queued bytes stay near the Xoff threshold.
  EXPECT_LE(fx.net->switch_at(fx.s).ingress_bytes(from_h0, 0),
            fx.net->config().pfc.xoff_bytes + 15'000);
}

TEST(Switch, PfcDisabledAllowsOverflowDrops) {
  NetConfig cfg;
  cfg.pfc.enabled = false;
  cfg.switch_buffer_bytes = 100 * 1000;  // tiny buffer
  Simulator sim;
  Topology topo;
  const NodeId s = topo.add_switch("S");
  const NodeId a = topo.add_host("a");
  const NodeId b = topo.add_host("b");
  const NodeId dst = topo.add_host("dst");
  topo.add_link(s, a, Rate::gbps(40), 1_us);
  topo.add_link(s, b, Rate::gbps(40), 1_us);
  topo.add_link(s, dst, Rate::gbps(10), 1_us);  // bottleneck
  Network net(sim, topo, cfg);
  routing::install_shortest_paths(net);
  for (const NodeId src : {a, b}) {
    FlowSpec f;
    f.id = src;
    f.src_host = src;
    f.dst_host = dst;
    f.packet_bytes = 1000;
    net.host_at(src).add_flow(f);
  }
  sim.run_until(1_ms);
  EXPECT_GT(net.drops(DropReason::kBufferOverflow), 0u);
}

}  // namespace
}  // namespace dcdl
