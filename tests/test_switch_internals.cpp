// White-box tests of switch internals: egress queue introspection,
// watchdog flush accounting, per-flow attribution, threshold overrides.
#include <gtest/gtest.h>

#include "dcdl/device/host.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/topo/generators.hpp"

namespace dcdl {
namespace {

using namespace dcdl::literals;
using namespace dcdl::topo;

// h0 -> S0 -> S1 -> h1, with S1's egress toward h1 pausable by... hosts
// never pause, so congestion is created by pausing S0<-S1 manually.
struct Chain {
  Simulator sim;
  RingTopo line = make_line(2, 1, LinkParams{Rate::gbps(40), 1_us});
  Topology topo = line.topo;
  std::unique_ptr<Network> net;

  Chain() {
    net = std::make_unique<Network>(sim, topo, NetConfig{});
    routing::install_shortest_paths(*net);
  }

  PortId port(NodeId from, NodeId to) { return *topo.port_towards(from, to); }
};

TEST(SwitchInternals, EgressQueueBytesTrackBacklog) {
  Chain fx;
  FlowSpec f;
  f.id = 1;
  f.src_host = fx.line.hosts[0][0];
  f.dst_host = fx.line.hosts[1][0];
  f.packet_bytes = 1000;
  fx.net->host_at(f.src_host).add_flow(f);
  // Pause S0's egress toward S1 by hand: backlog accumulates in the
  // egress queue, charged to the host-facing ingress counter.
  const PortId s0_to_s1 = fx.port(fx.line.switches[0], fx.line.switches[1]);
  const PortId s0_from_h0 = fx.port(fx.line.switches[0], fx.line.hosts[0][0]);
  fx.sim.schedule_at(10_us, [&] {
    fx.net->switch_at(fx.line.switches[0]).on_pfc(s0_to_s1, 0, true);
  });
  fx.sim.run_until(100_us);
  auto& sw = fx.net->switch_at(fx.line.switches[0]);
  EXPECT_TRUE(sw.egress_paused(s0_to_s1, 0));
  EXPECT_GT(sw.egress_queue_bytes(s0_to_s1, 0), 30'000);
  EXPECT_EQ(sw.egress_queue_bytes(s0_to_s1, 0),
            sw.egress_bytes_from(s0_to_s1, 0, s0_from_h0, 0));
  EXPECT_EQ(sw.ingress_bytes(s0_from_h0, 0),
            sw.egress_queue_bytes(s0_to_s1, 0));
  EXPECT_GE(sw.egress_paused_for(s0_to_s1, 0), 80_us);
}

TEST(SwitchInternals, FlushReleasesCountersAndResumes) {
  Chain fx;
  FlowSpec f;
  f.id = 1;
  f.src_host = fx.line.hosts[0][0];
  f.dst_host = fx.line.hosts[1][0];
  f.packet_bytes = 1000;
  fx.net->host_at(f.src_host).add_flow(f);
  const PortId s0_to_s1 = fx.port(fx.line.switches[0], fx.line.switches[1]);
  const PortId s0_from_h0 = fx.port(fx.line.switches[0], fx.line.hosts[0][0]);
  fx.sim.schedule_at(10_us, [&] {
    fx.net->switch_at(fx.line.switches[0]).on_pfc(s0_to_s1, 0, true);
  });
  fx.sim.run_until(100_us);
  auto& sw = fx.net->switch_at(fx.line.switches[0]);
  ASSERT_TRUE(sw.pause_asserted(s0_from_h0, 0));  // host is being paused
  const std::int64_t backlog = sw.egress_queue_bytes(s0_to_s1, 0);
  const std::uint64_t flushed = sw.flush_egress_queue(s0_to_s1, 0);
  EXPECT_EQ(static_cast<std::int64_t>(flushed) * 1000, backlog);
  EXPECT_EQ(sw.egress_queue_bytes(s0_to_s1, 0), 0);
  EXPECT_EQ(sw.ingress_bytes(s0_from_h0, 0), 0);
  EXPECT_EQ(sw.total_buffered(), 0);
  EXPECT_EQ(fx.net->drops(DropReason::kWatchdogReset), flushed);
  // The flush emitted the RESUME toward the host.
  fx.sim.run_until(110_us);
  EXPECT_FALSE(fx.net->host_at(fx.line.hosts[0][0]).egress_paused(0));
}

TEST(SwitchInternals, IgnorePauseWindowTransmitsThroughXoff) {
  Chain fx;
  FlowSpec f;
  f.id = 1;
  f.src_host = fx.line.hosts[0][0];
  f.dst_host = fx.line.hosts[1][0];
  f.packet_bytes = 1000;
  fx.net->host_at(f.src_host).add_flow(f);
  const PortId s0_to_s1 = fx.port(fx.line.switches[0], fx.line.switches[1]);
  fx.sim.schedule_at(10_us, [&] {
    fx.net->switch_at(fx.line.switches[0]).on_pfc(s0_to_s1, 0, true);
  });
  fx.sim.run_until(100_us);
  const auto before = fx.net->host_at(fx.line.hosts[1][0]).delivered_bytes(1);
  fx.net->switch_at(fx.line.switches[0])
      .ignore_pause_until(s0_to_s1, 0, fx.sim.now() + 50_us);
  fx.sim.run_until(160_us);
  const auto during = fx.net->host_at(fx.line.hosts[1][0]).delivered_bytes(1);
  EXPECT_GT(during, before + 30'000) << "the window drains the backlog";
  // After the window the (still-asserted) pause bites again only if the
  // peer re-asserts — our manual pause is still set:
  fx.sim.run_until(300_us);
  const auto after = fx.net->host_at(fx.line.hosts[1][0]).delivered_bytes(1);
  // Backlog drained during the window; once empty and paused again, only
  // the residual in-flight data arrives.
  EXPECT_LT(after - during, 200'000);
}

TEST(SwitchInternals, ThresholdOverrideChangesPauseOnset) {
  Chain fx;
  const NodeId s0 = fx.line.switches[0];
  const PortId s0_from_h0 = fx.port(s0, fx.line.hosts[0][0]);
  const PortId s0_to_s1 = fx.port(s0, fx.line.switches[1]);
  fx.net->switch_at(s0).set_thresholds(s0_from_h0, 0, 10'000, 8'000);
  FlowSpec f;
  f.id = 1;
  f.src_host = fx.line.hosts[0][0];
  f.dst_host = fx.line.hosts[1][0];
  f.packet_bytes = 1000;
  fx.net->host_at(f.src_host).add_flow(f);
  fx.sim.schedule_at(10_us, [&] {
    fx.net->switch_at(s0).on_pfc(s0_to_s1, 0, true);
  });
  fx.sim.run_until(100_us);
  // Occupancy capped near the 10 KB threshold (plus the reaction window),
  // far below the default 40 KB.
  EXPECT_LT(fx.net->switch_at(s0).ingress_bytes(s0_from_h0, 0), 25'000);
  EXPECT_TRUE(fx.net->switch_at(s0).pause_asserted(s0_from_h0, 0));
}

TEST(SwitchInternals, FlowSlotsRecycleAfterDrain) {
  // The dense per-flow accounting indexes by flow *slot*, and a slot is
  // recycled the moment its flow fully drains from the switch. A later flow
  // must reuse the freed slot (capacity stays at the concurrent high-water
  // mark) and the recycled counters must read exactly for the new flow and
  // zero for the old one.
  Chain fx;
  const NodeId s0 = fx.line.switches[0];
  const PortId s0_from_h0 = fx.port(s0, fx.line.hosts[0][0]);
  const PortId s0_to_s1 = fx.port(s0, fx.line.switches[1]);
  auto& sw = fx.net->switch_at(s0);

  FlowSpec f1;
  f1.id = 7;
  f1.src_host = fx.line.hosts[0][0];
  f1.dst_host = fx.line.hosts[1][0];
  f1.packet_bytes = 1000;
  f1.stop = 40_us;
  fx.net->host_at(f1.src_host).add_flow(f1);
  // Build a backlog so the flow actually holds buffer in S0.
  fx.sim.schedule_at(5_us, [&] { sw.on_pfc(s0_to_s1, 0, true); });
  fx.sim.run_until(30_us);
  EXPECT_EQ(sw.resident_flows(), 1u);
  EXPECT_GT(sw.ingress_flow_bytes(s0_from_h0, 0, 7), 0);

  // Unpause; the flow stops at 40us and the backlog drains completely.
  sw.on_pfc(s0_to_s1, 0, false);
  fx.sim.run_until(200_us);
  EXPECT_EQ(sw.resident_flows(), 0u);
  EXPECT_EQ(sw.ingress_flow_bytes(s0_from_h0, 0, 7), 0);
  const std::uint32_t cap = sw.flow_slot_capacity();
  EXPECT_GE(cap, 1u);

  // A brand-new flow id reuses the recycled slot instead of growing the
  // registry, and its counters are exact.
  FlowSpec f2 = f1;
  f2.id = 99;
  f2.start = 200_us;
  f2.stop = 240_us;
  fx.net->host_at(f2.src_host).add_flow(f2);
  fx.sim.schedule_at(205_us, [&] { sw.on_pfc(s0_to_s1, 0, true); });
  fx.sim.run_until(230_us);
  EXPECT_EQ(sw.resident_flows(), 1u);
  EXPECT_GT(sw.ingress_flow_bytes(s0_from_h0, 0, 99), 0);
  EXPECT_EQ(sw.ingress_flow_bytes(s0_from_h0, 0, 7), 0)
      << "stale flow id must not alias the recycled slot";
  EXPECT_EQ(sw.flow_slot_capacity(), cap) << "slot reused, registry not grown";
  EXPECT_EQ(sw.ingress_bytes(s0_from_h0, 0),
            sw.ingress_flow_bytes(s0_from_h0, 0, 99))
      << "with one resident flow, per-flow and per-counter tallies agree";

  sw.on_pfc(s0_to_s1, 0, false);
  fx.sim.run_until(400_us);
  EXPECT_EQ(sw.resident_flows(), 0u);
  EXPECT_EQ(sw.flow_slot_capacity(), cap);
}

}  // namespace
}  // namespace dcdl
