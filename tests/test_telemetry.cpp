// dcdl::telemetry: flight-recorder ring semantics, metrics registry
// behaviour, exporter format guarantees, and the deadlock post-mortem path.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "dcdl/analysis/deadlock.hpp"
#include "dcdl/campaign/campaign.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/stats/pause_log.hpp"
#include "dcdl/telemetry/telemetry.hpp"

namespace dcdl::telemetry {
namespace {

using namespace dcdl::literals;
using namespace dcdl::scenarios;

// ------------------------------------------------------------ ring buffer

TraceRecord make_record(std::int64_t t, std::uint32_t node) {
  TraceRecord r{};
  r.t_ps = t;
  r.node = node;
  r.kind = RecordKind::kTxStart;
  return r;
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(1).capacity(), 1u);
  EXPECT_EQ(FlightRecorder(2).capacity(), 2u);
  EXPECT_EQ(FlightRecorder(3).capacity(), 4u);
  EXPECT_EQ(FlightRecorder(1000).capacity(), 1024u);
  EXPECT_EQ(FlightRecorder(1024).capacity(), 1024u);
}

TEST(FlightRecorderTest, SnapshotBeforeWrapIsInsertionOrder) {
  FlightRecorder rec(8);
  for (int i = 0; i < 5; ++i) rec.record(make_record(i, 0));
  EXPECT_EQ(rec.total_recorded(), 5u);
  EXPECT_EQ(rec.size(), 5u);
  const auto snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(snap[i].t_ps, i);
}

TEST(FlightRecorderTest, WrapKeepsNewestWindowOldestFirst) {
  FlightRecorder rec(8);
  for (int i = 0; i < 21; ++i) rec.record(make_record(i, 0));
  EXPECT_EQ(rec.total_recorded(), 21u);
  EXPECT_EQ(rec.size(), 8u);
  const auto snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(snap[i].t_ps, 13 + i);

  const auto last3 = rec.last(3);
  ASSERT_EQ(last3.size(), 3u);
  EXPECT_EQ(last3[0].t_ps, 18);
  EXPECT_EQ(last3[2].t_ps, 20);
  EXPECT_EQ(rec.last(100).size(), 8u) << "last(n) clamps to size()";
}

TEST(FlightRecorderTest, FillToExactlyCapacityKeepsEveryRecord) {
  // Wrap-around boundary, part 1: total == capacity is the last state with
  // no loss. Every record present, oldest first, no duplicates.
  FlightRecorder rec(8);
  ASSERT_EQ(rec.capacity(), 8u);
  for (int i = 0; i < 8; ++i) rec.record(make_record(i, 0));
  EXPECT_EQ(rec.total_recorded(), 8u);
  EXPECT_EQ(rec.size(), 8u);
  const auto snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(snap[i].t_ps, i);
}

TEST(FlightRecorderTest, CapacityPlusOneDropsExactlyTheOldest) {
  // Wrap-around boundary, part 2: one more record must evict record 0 and
  // nothing else — still oldest-first, no duplicate, no gap.
  FlightRecorder rec(8);
  for (int i = 0; i < 9; ++i) rec.record(make_record(i, 0));
  EXPECT_EQ(rec.total_recorded(), 9u);
  EXPECT_EQ(rec.size(), 8u);
  const auto snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(snap[i].t_ps, 1 + i);
}

TEST(FlightRecorderTest, ClearResets) {
  FlightRecorder rec(4);
  rec.record(make_record(1, 0));
  rec.clear();
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_TRUE(rec.snapshot().empty());
}

TEST(FlightRecorderTest, AttachOptionsMaskCategories) {
  // Same deterministic run twice: a recorder masked to PFC-only must see
  // strictly fewer records, and only pause kinds.
  for (const bool pfc_only : {false, true}) {
    RoutingLoopParams p;
    p.inject = Rate::gbps(7);  // above the Eq. 3 boundary: plenty of PFC
    Scenario s = make_routing_loop(p);
    FlightRecorder rec(1u << 14);
    FlightRecorder::AttachOptions opts;
    if (pfc_only) {
      opts.tx_start = opts.delivered = opts.dropped = false;
      opts.cnp = opts.queue_bytes = false;
    }
    rec.attach(*s.net, opts);
    s.sim->run_until(2_ms);
    ASSERT_GT(rec.total_recorded(), 0u);
    if (pfc_only) {
      for (const TraceRecord& r : rec.snapshot()) {
        EXPECT_TRUE(r.kind == RecordKind::kPfcXoff ||
                    r.kind == RecordKind::kPfcXon);
      }
    }
  }
}

// --------------------------------------------------------------- metrics

TEST(MetricsRegistryTest, CountersGaugesHistograms) {
  MetricsRegistry reg;
  const CounterId c = reg.counter("c");
  const GaugeId g = reg.gauge("g");
  const HistogramId h = reg.histogram("h", {10, 100});

  reg.add(c);
  reg.add(c, 41);
  reg.set(g, -2.5);
  reg.observe(h, 5);     // bucket 0 (<= 10)
  reg.observe(h, 10);    // bucket 0 (inclusive upper bound)
  reg.observe(h, 50);    // bucket 1
  reg.observe(h, 1000);  // overflow bucket

  EXPECT_EQ(reg.counter_value(c), 42u);
  EXPECT_DOUBLE_EQ(reg.gauge_value(g), -2.5);
  EXPECT_EQ(reg.histogram_count(h), 4u);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.items.size(), 3u);
  EXPECT_EQ(snap.items[0].name, "c");
  EXPECT_EQ(snap.items[2].kind, MetricKind::kHistogram);
  EXPECT_EQ(snap.items[2].buckets, (std::vector<std::uint64_t>{2, 1, 1}));
  EXPECT_DOUBLE_EQ(snap.items[2].sum, 1065);

  const auto flat = snap.flatten();
  EXPECT_DOUBLE_EQ(snap.value("c"), 42);
  EXPECT_DOUBLE_EQ(snap.value("h.count"), 4);
  EXPECT_DOUBLE_EQ(snap.value("h.mean"), 1065.0 / 4);
  EXPECT_DOUBLE_EQ(snap.value("absent", -1), -1);
  ASSERT_EQ(flat.size(), 5u);  // c, g, h.count, h.sum, h.mean
}

TEST(MetricsRegistryTest, HistogramBoundarySemanticsArePinned) {
  // Pins the inclusive-upper-edge contract documented on observe(): a value
  // exactly on a boundary belongs to the bucket that boundary closes, and
  // the first value past the last bound saturates into overflow. These
  // semantics are part of every exported artifact, so a change here is a
  // schema change.
  MetricsRegistry reg;
  const HistogramId h = reg.histogram("h", {10, 100, 1000});
  reg.observe(h, 9.999);   // bucket 0
  reg.observe(h, 10);      // bucket 0: boundary closes the bucket below
  reg.observe(h, 10.001);  // bucket 1: first value past the boundary
  reg.observe(h, 100);     // bucket 1
  reg.observe(h, 1000);    // bucket 2: the last bound is still inclusive
  reg.observe(h, 1000.5);  // overflow
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.items[0].buckets, (std::vector<std::uint64_t>{2, 2, 1, 1}));
  EXPECT_EQ(reg.histogram_count(h), 6u);
  EXPECT_DOUBLE_EQ(snap.items[0].sum, 9.999 + 10 + 10.001 + 100 + 1000 +
                                          1000.5);
}

TEST(MetricsRegistryTest, HistogramNonFiniteSaturatesIntoOverflow) {
  // NaN/+inf/-inf land in the overflow bucket, count, and stay out of the
  // sum — one bad sample must not poison the mean or leak into the
  // smallest bucket via a false NaN comparison.
  MetricsRegistry reg;
  const HistogramId h = reg.histogram("h", {10, 100});
  reg.observe(h, 5);
  reg.observe(h, std::numeric_limits<double>::quiet_NaN());
  reg.observe(h, std::numeric_limits<double>::infinity());
  reg.observe(h, -std::numeric_limits<double>::infinity());
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.items[0].buckets, (std::vector<std::uint64_t>{1, 0, 3}));
  EXPECT_EQ(reg.histogram_count(h), 4u);
  EXPECT_DOUBLE_EQ(snap.items[0].sum, 5)
      << "non-finite observations are excluded from the sum; the count/sum "
         "discrepancy is the signal they happened";
}

TEST(RunTelemetryTest, EveryDropReasonRoutesToItsOwnCounter) {
  // Regression: the dropped-hook closure once captured only four of the
  // five per-reason counter ids, so kDataplaneReset drops incremented a
  // value-initialized id — slot 0, net.pfc_xoff_total. Fire one drop of
  // every reason and check each counter reads exactly 1 and the pfc
  // counter stays 0.
  RoutingLoopParams p;
  Scenario s = make_routing_loop(p);
  RunTelemetry telem(*s.net);
  Packet pkt{};
  for (int r = 0; r < kNumDropReasons; ++r) {
    s.net->trace().dropped(Time::zero(), pkt, NodeId{0},
                           static_cast<DropReason>(r));
  }
  const MetricsRegistry& reg = telem.registry();
  for (int r = 0; r < kNumDropReasons; ++r) {
    EXPECT_EQ(reg.counter_value(telem.ids().dropped[r]), 1u)
        << "reason " << to_string(static_cast<DropReason>(r));
  }
  EXPECT_EQ(reg.counter_value(telem.ids().pfc_xoff), 0u)
      << "a drop must never bleed into the pfc_xoff counter";
}

TEST(MetricsRegistryTest, RegistrationIsIdempotentButKindChecked) {
  MetricsRegistry reg;
  const CounterId a = reg.counter("x");
  const CounterId b = reg.counter("x");
  EXPECT_EQ(a.v, b.v);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  reg.histogram("hist", {1, 2});
  EXPECT_NO_THROW(reg.histogram("hist", {1, 2}));
  EXPECT_THROW(reg.histogram("hist", {1, 2, 3}), std::invalid_argument);
}

TEST(RunTelemetryTest, CountsMatchIndependentObservers) {
  RoutingLoopParams p;
  p.inject = Rate::gbps(7);
  Scenario s = make_routing_loop(p);
  stats::PauseEventLog pauses(*s.net);
  RunTelemetry telem(*s.net);
  s.sim->run_until(3_ms);

  std::uint64_t xoff = 0, xon = 0;
  for (const auto& e : pauses.events()) (e.paused ? xoff : xon) += 1;
  const MetricsRegistry& reg = telem.registry();
  EXPECT_EQ(reg.counter_value(telem.ids().pfc_xoff), xoff);
  EXPECT_EQ(reg.counter_value(telem.ids().pfc_xon), xon);

  const MetricsSnapshot snap = telem.snapshot();
  EXPECT_DOUBLE_EQ(snap.value("sim.events_executed"),
                   static_cast<double>(s.sim->events_executed()));
  EXPECT_GT(snap.value("net.tx_start_total"), 0);
  EXPECT_GT(snap.value("net.dropped_packets_total.ttl_expired"), 0)
      << "the routing loop drains by TTL expiry";
}

TEST(RunTelemetryTest, SnapshotIsDeterministicAcrossRuns) {
  auto run = [] {
    RoutingLoopParams p;
    p.inject = Rate::gbps(6);
    Scenario s = make_routing_loop(p);
    RunTelemetry telem(*s.net);
    s.sim->run_until(2_ms);
    return telem.snapshot().flatten();
  };
  EXPECT_EQ(run(), run());
}

// -------------------------------------------------------------- exporters

std::vector<TraceRecord> fig2_records(Scenario& s, FlightRecorder& rec) {
  rec.attach(*s.net);
  s.sim->run_until(2_ms);
  return rec.snapshot();
}

TEST(PerfettoExportTest, SpansNestAndCountersMatchRecords) {
  RoutingLoopParams p;
  p.inject = Rate::gbps(7);
  Scenario s = make_routing_loop(p);
  FlightRecorder rec;
  const auto records = fig2_records(s, rec);
  const std::string json = to_perfetto_json(*s.topo, records);

  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"PFC pause\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);

  // Every "B" has a matching later "E" (the exporter closes open spans at
  // the window end): equal counts is the cheap proxy chrome://tracing
  // enforces per track.
  std::size_t b = 0, e = 0, pos = 0;
  while ((pos = json.find("\"ph\":\"B\"", pos)) != std::string::npos) {
    ++b; pos += 8;
  }
  pos = 0;
  while ((pos = json.find("\"ph\":\"E\"", pos)) != std::string::npos) {
    ++e; pos += 8;
  }
  EXPECT_GT(b, 0u);
  EXPECT_EQ(b, e);

  // Deterministic: the same record stream renders to the same bytes.
  EXPECT_EQ(json, to_perfetto_json(*s.topo, records));
}

TEST(PerfettoExportTest, DropAndResumeInstantsAreEmittedAndDeterministic) {
  // The routing loop produces both TTL-expiry drops and PFC resumes; the
  // export must carry an instant marker for each, and stay byte-identical
  // across renders (the determinism contract covers the instant paths too).
  RoutingLoopParams p;
  p.inject = Rate::gbps(7);
  Scenario s = make_routing_loop(p);
  FlightRecorder rec;
  const auto records = fig2_records(s, rec);
  bool saw_drop = false, saw_xon = false;
  for (const TraceRecord& r : records) {
    saw_drop |= r.kind == RecordKind::kDropped;
    saw_xon |= r.kind == RecordKind::kPfcXon;
  }
  ASSERT_TRUE(saw_drop) << "the loop must age packets out by TTL";
  ASSERT_TRUE(saw_xon);

  const std::string json = to_perfetto_json(*s.topo, records);
  EXPECT_NE(json.find("\"drop ttl_expired\""), std::string::npos);
  EXPECT_NE(json.find("\"pfc resume\""), std::string::npos);
  EXPECT_EQ(json, to_perfetto_json(*s.topo, records));

  // Both families are opt-out.
  PerfettoOptions off;
  off.drop_instants = false;
  off.xon_instants = false;
  const std::string bare = to_perfetto_json(*s.topo, records, off);
  EXPECT_EQ(bare.find("\"drop ttl_expired\""), std::string::npos);
  EXPECT_EQ(bare.find("\"pfc resume\""), std::string::npos);
}

TEST(JsonlExportTest, TopologyHeaderIsAdditive) {
  // The topology-bearing overload embeds nodes+links in the header line;
  // the record lines are identical to the bare format.
  RoutingLoopParams p;
  p.inject = Rate::gbps(7);
  Scenario s = make_routing_loop(p);
  FlightRecorder rec;
  const auto records = fig2_records(s, rec);
  const std::string bare = to_jsonl(records);
  const std::string with_topo = to_jsonl(*s.topo, records);

  const std::string header = with_topo.substr(0, with_topo.find('\n'));
  EXPECT_NE(header.find("\"topology\":{"), std::string::npos);
  EXPECT_NE(header.find("\"links\":["), std::string::npos);
  EXPECT_EQ(bare.substr(bare.find('\n')),
            with_topo.substr(with_topo.find('\n')))
      << "record lines must not change when the header grows";
}

TEST(JsonlExportTest, HeaderAndRecordCount) {
  RoutingLoopParams p;
  p.inject = Rate::gbps(7);
  Scenario s = make_routing_loop(p);
  FlightRecorder rec;
  const auto records = fig2_records(s, rec);
  const std::string jsonl = to_jsonl(records);

  const std::string header = jsonl.substr(0, jsonl.find('\n'));
  EXPECT_NE(header.find("\"schema\":\"dcdl.telemetry.v1\""),
            std::string::npos);
  EXPECT_NE(header.find("\"record_count\":" +
                        std::to_string(records.size())),
            std::string::npos);
  const std::size_t lines =
      static_cast<std::size_t>(std::count(jsonl.begin(), jsonl.end(), '\n'));
  EXPECT_EQ(lines, records.size() + 1);  // header + one line per record
}

TEST(PostMortemTest, ConfirmedDeadlockDumpNamesCycleAndPauseEvents) {
  // Fig. 2 above the deadlock boundary: the monitor confirms a cycle, the
  // callback snapshots the recorder, and the dump must carry (a) the cycle
  // queues in its header and (b) the pause assertions that closed it.
  RoutingLoopParams p;
  p.inject = Rate::gbps(7);
  Scenario s = make_routing_loop(p);
  FlightRecorder rec;
  rec.attach(*s.net);
  analysis::DeadlockMonitor monitor(*s.net, Time{50'000'000}, 1_ms);
  std::string dump;
  monitor.set_on_confirmed([&](const analysis::DeadlockMonitor& m) {
    dump = post_mortem_jsonl(rec, m.cycle(), *m.detected_at(), 1024);
  });
  monitor.start(Time::zero(), 20_ms);
  s.sim->run_until(20_ms);

  ASSERT_TRUE(monitor.deadlocked());
  ASSERT_FALSE(dump.empty()) << "on_confirmed must have fired";

  const std::string header = dump.substr(0, dump.find('\n'));
  EXPECT_NE(header.find("\"post_mortem\":true"), std::string::npos);
  EXPECT_NE(header.find("\"cycle\":["), std::string::npos);
  for (const auto& q : monitor.cycle()) {
    const std::string entry = "{\"node\":" + std::to_string(q.node) +
                              ",\"port\":" + std::to_string(q.port) +
                              ",\"cls\":" + std::to_string(q.cls) + "}";
    EXPECT_NE(header.find(entry), std::string::npos)
        << "cycle queue missing from header: " << entry;
  }
  EXPECT_NE(dump.find("\"kind\":\"pfc_xoff\""), std::string::npos)
      << "the window must contain the pause assertions that closed the "
         "cycle";
}

TEST(PostMortemTest, ExecutorWritesIdenticalRecordAcrossJobs) {
  // The campaign integration end-to-end knob: telemetry embedded in the
  // v2 record depends only on the spec, never on --jobs or interleaving.
  // (File outputs are exercised by the CLI; here we check the record.)
  using namespace dcdl::campaign;
  ScenarioRegistry reg;
  register_builtin_scenarios(reg);
  SweepSpec spec;
  spec.scenario = "routing_loop";
  spec.axes = parse_grid("inject=4..7gbps:2");
  spec.seeds_per_cell = 1;
  spec.run_for = 2_ms;
  spec.drain_grace = 10_ms;
  const std::vector<RunSpec> runs = expand(spec);

  ExecutorOptions one, four;
  one.jobs = 1;
  four.jobs = 4;
  const CampaignResult a = CampaignExecutor(reg, one).run(runs);
  const CampaignResult b = CampaignExecutor(reg, four).run(runs);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].telemetry, b.records[i].telemetry);
    EXPECT_FALSE(a.records[i].telemetry.empty());
  }
}

// ------------------------------------------------------------ POD record

TEST(TraceRecordTest, LayoutIsPinned) {
  // The static_asserts in record.hpp are the real gate; this documents the
  // numbers where a human will read them.
  EXPECT_EQ(sizeof(TraceRecord), 32u);
  EXPECT_TRUE(std::is_trivially_copyable_v<TraceRecord>);
  EXPECT_EQ(std::string(to_string(RecordKind::kPfcXoff)), "pfc_xoff");
  EXPECT_EQ(std::string(to_string(RecordKind::kQueueBytes)), "queue_bytes");
}

}  // namespace
}  // namespace dcdl::telemetry
