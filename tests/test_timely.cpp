// TIMELY-like RTT-gradient pacer: unit behaviour plus end-to-end PFC
// reduction on the incast (the paper's §4 second cited transport).
#include <gtest/gtest.h>

#include "dcdl/device/host.hpp"
#include "dcdl/mitigation/timely.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/stats/pause_log.hpp"
#include "dcdl/topo/generators.hpp"

namespace dcdl::mitigation {
namespace {

using namespace dcdl::literals;
using namespace dcdl::topo;

TEST(Timely, StartsAtLineRate) {
  TimelyPacer p(TimelyParams{});
  EXPECT_EQ(p.current_rate()->bps(), Rate::gbps(40).bps());
}

TEST(Timely, LowRttGrowsAdditively) {
  TimelyParams params;
  params.line_rate = Rate::gbps(40);
  params.ewma_alpha = 1.0;  // no memory: isolates the branch under test
  TimelyPacer p(params);
  p.on_rtt(1_us, 6_us);  // seeds prev_rtt
  // Force below line rate first with a high-RTT episode...
  p.on_rtt(2_us, 80_us);
  const double after_cut = p.current_rate()->as_gbps();
  ASSERT_LT(after_cut, 40.0);
  // ...then sub-T_low samples recover additively (constant low RTT keeps
  // the streak at zero after the first negative-gradient jump).
  p.on_rtt(3_us, 6_us);
  const double base = p.current_rate()->as_gbps();
  for (int i = 0; i < 10; ++i) {
    p.on_rtt(Time{4'000'000 + i * 1'000'000}, 6_us);
  }
  EXPECT_NEAR(p.current_rate()->as_gbps(), base + 10 * 0.1, 0.2);
}

TEST(Timely, HighRttCutsMultiplicatively) {
  TimelyPacer p(TimelyParams{});
  p.on_rtt(1_us, 20_us);
  p.on_rtt(2_us, 100_us);  // > T_high = 40 us
  // cut = 1 - 0.8*(1 - 40/100) = 0.52.
  EXPECT_NEAR(p.current_rate()->as_gbps(), 40.0 * 0.52, 0.5);
}

TEST(Timely, PositiveGradientDecreasesInTheBand) {
  TimelyPacer p(TimelyParams{});
  p.on_rtt(1_us, 10_us);
  p.on_rtt(2_us, 30_us);  // in [T_low, T_high], rising steeply
  EXPECT_GT(p.gradient(), 0.0);
  EXPECT_LT(p.current_rate()->as_gbps(), 40.0);
}

TEST(Timely, NegativeGradientRecoversWithHai) {
  TimelyParams params;
  params.ewma_alpha = 1.0;  // instantaneous gradient for determinism
  TimelyPacer p(params);
  p.on_rtt(1_us, 20_us);
  p.on_rtt(2_us, 100_us);  // cut hard (above T_high)
  const double low = p.current_rate()->as_gbps();
  // Falling RTTs inside the band: additive, then hyper after the streak:
  // 4 samples x delta + 8 samples x 5*delta = 4.4 Gbps.
  Time rtt = 38_us;
  for (int i = 0; i < 12; ++i) {
    p.on_rtt(Time{(3 + i) * 1'000'000}, rtt);
    rtt -= 1_us;
  }
  EXPECT_NEAR(p.current_rate()->as_gbps(), low + 4.4, 0.3);
}

TEST(Timely, NeverBelowMinRate) {
  TimelyParams params;
  params.min_rate = Rate::mbps(50);
  TimelyPacer p(params);
  p.on_rtt(1_us, 100_us);
  for (int i = 0; i < 100; ++i) {
    p.on_rtt(Time{(2 + i) * 1'000'000}, 800_us);
  }
  EXPECT_GE(p.current_rate()->bps(), Rate::mbps(50).bps());
}

TEST(Timely, ReducesPfcOnIncastEndToEnd) {
  std::uint64_t pauses_plain = 0, pauses_timely = 0;
  for (const bool timely : {false, true}) {
    Simulator sim;
    const LeafSpineTopo ls = make_leaf_spine(3, 2, 4);
    Topology topo = ls.topo;
    NetConfig cfg;
    cfg.rtt_feedback = timely;
    Network net(sim, topo, cfg);
    routing::install_shortest_paths(net);
    int made = 0;
    for (int leaf = 1; leaf < 3; ++leaf) {
      for (int h = 0; h < 4; ++h) {
        FlowSpec f;
        f.id = static_cast<FlowId>(++made);
        f.src_host = ls.hosts[static_cast<std::size_t>(leaf)]
                             [static_cast<std::size_t>(h)];
        f.dst_host = ls.hosts[0][0];
        f.packet_bytes = 1000;
        std::unique_ptr<Pacer> pacer;
        if (timely) pacer = std::make_unique<TimelyPacer>(TimelyParams{});
        net.host_at(f.src_host).add_flow(f, std::move(pacer));
      }
    }
    stats::PauseEventLog log(net);
    sim.run_until(20_ms);
    std::uint64_t pauses = 0;
    for (const auto& e : log.events()) pauses += e.paused ? 1 : 0;
    (timely ? pauses_timely : pauses_plain) = pauses;
    EXPECT_EQ(net.drops(DropReason::kBufferOverflow), 0u);
  }
  EXPECT_LT(pauses_timely * 5, pauses_plain)
      << "TIMELY should cut pause generation by >5x";
}

}  // namespace
}  // namespace dcdl::mitigation
