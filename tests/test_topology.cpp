#include <gtest/gtest.h>

#include <set>

#include "dcdl/topo/generators.hpp"
#include "dcdl/topo/topology.hpp"

namespace dcdl {
namespace {

using namespace dcdl::topo;

TEST(Topology, PortsAndPeersAreSymmetric) {
  Topology t;
  const NodeId a = t.add_switch("a");
  const NodeId b = t.add_switch("b");
  const NodeId h = t.add_host("h");
  t.add_link(a, b);
  t.add_link(a, h);

  EXPECT_EQ(t.degree(a), 2u);
  EXPECT_EQ(t.degree(b), 1u);
  const PortPeer& ab = t.peer(a, 0);
  EXPECT_EQ(ab.peer_node, b);
  const PortPeer& back = t.peer(ab.peer_node, ab.peer_port);
  EXPECT_EQ(back.peer_node, a);
  EXPECT_EQ(back.peer_port, 0);
}

TEST(Topology, PortTowards) {
  Topology t;
  const NodeId a = t.add_switch();
  const NodeId b = t.add_switch();
  const NodeId c = t.add_switch();
  t.add_link(a, b);
  t.add_link(a, c);
  EXPECT_EQ(t.port_towards(a, b), PortId{0});
  EXPECT_EQ(t.port_towards(a, c), PortId{1});
  EXPECT_FALSE(t.port_towards(b, c).has_value());
}

TEST(Topology, HostSwitchQueries) {
  Topology t;
  const NodeId s = t.add_switch();
  const NodeId h = t.add_host();
  t.add_link(s, h);
  EXPECT_TRUE(t.is_switch(s));
  EXPECT_TRUE(t.is_host(h));
  EXPECT_EQ(t.switches(), std::vector<NodeId>{s});
  EXPECT_EQ(t.hosts(), std::vector<NodeId>{h});
  EXPECT_EQ(t.first_host_of(s), h);
}

TEST(Generators, RingHasNLinksPlusHosts) {
  const RingTopo r = make_ring(5, 2);
  EXPECT_EQ(r.switches.size(), 5u);
  EXPECT_EQ(r.topo.link_count(), 5u + 10u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(r.topo.port_towards(r.switches[i], r.switches[(i + 1) % 5])
                    .has_value());
    EXPECT_EQ(r.hosts[i].size(), 2u);
  }
}

TEST(Generators, TwoSwitchRingIsSingleLink) {
  const RingTopo r = make_ring(2, 1);
  // One switch-switch link (not two parallel ones) + two host links.
  EXPECT_EQ(r.topo.link_count(), 3u);
  EXPECT_EQ(r.topo.degree(r.switches[0]), 2u);
}

TEST(Generators, LineIsAcyclicChain) {
  const RingTopo l = make_line(4, 1);
  EXPECT_EQ(l.topo.link_count(), 3u + 4u);
  EXPECT_FALSE(
      l.topo.port_towards(l.switches[0], l.switches[3]).has_value());
}

TEST(Generators, MeshGridStructure) {
  const MeshTopo m = make_mesh(3, 4);
  // Links: horizontal 3*3 + vertical 2*4 = 17, plus 12 host links.
  EXPECT_EQ(m.topo.link_count(), 17u + 12u);
  EXPECT_TRUE(m.topo.port_towards(m.sw[1][1], m.sw[1][2]).has_value());
  EXPECT_TRUE(m.topo.port_towards(m.sw[1][1], m.sw[2][1]).has_value());
  EXPECT_FALSE(m.topo.port_towards(m.sw[0][0], m.sw[1][1]).has_value());
}

TEST(Generators, LeafSpineIsFullBipartite) {
  const LeafSpineTopo ls = make_leaf_spine(4, 3, 2);
  EXPECT_EQ(ls.leaves.size(), 4u);
  EXPECT_EQ(ls.spines.size(), 3u);
  for (const NodeId leaf : ls.leaves) {
    for (const NodeId spine : ls.spines) {
      EXPECT_TRUE(ls.topo.port_towards(leaf, spine).has_value());
    }
    EXPECT_EQ(ls.topo.degree(leaf), 3u + 2u);
  }
  for (const NodeId spine : ls.spines) {
    EXPECT_EQ(ls.topo.node(spine).tier, 2);
  }
}

TEST(Generators, FatTreeK4Counts) {
  const FatTreeTopo ft = make_fat_tree(4);
  EXPECT_EQ(ft.core.size(), 4u);         // (k/2)^2
  EXPECT_EQ(ft.agg.size(), 4u);          // pods
  EXPECT_EQ(ft.agg[0].size(), 2u);       // k/2 per pod
  EXPECT_EQ(ft.edge[0].size(), 2u);
  EXPECT_EQ(ft.all_hosts.size(), 16u);   // k^3/4
  // Every switch has degree k.
  for (const NodeId sw : ft.topo.switches()) {
    EXPECT_EQ(ft.topo.degree(sw), 4u) << ft.topo.node(sw).name;
  }
  // Tiers annotated.
  EXPECT_EQ(ft.topo.node(ft.core[0]).tier, 3);
  EXPECT_EQ(ft.topo.node(ft.agg[0][0]).tier, 2);
  EXPECT_EQ(ft.topo.node(ft.edge[0][0]).tier, 1);
}

TEST(Generators, FatTreeCoreReachesEveryPodOnce) {
  const FatTreeTopo ft = make_fat_tree(4);
  for (const NodeId core : ft.core) {
    std::set<int> pods;
    for (const auto& pp : ft.topo.ports(core)) {
      for (int pod = 0; pod < 4; ++pod) {
        for (const NodeId agg : ft.agg[pod]) {
          if (pp.peer_node == agg) pods.insert(pod);
        }
      }
    }
    EXPECT_EQ(pods.size(), 4u);
  }
}

TEST(Generators, BCubeCounts) {
  const BCubeTopo bc = make_bcube(4, 1);
  EXPECT_EQ(bc.hosts.size(), 16u);               // n^(k+1)
  EXPECT_EQ(bc.level_switches.size(), 2u);       // levels 0..k
  EXPECT_EQ(bc.level_switches[0].size(), 4u);    // n^k
  // Every host has k+1 ports; every switch n ports.
  for (const NodeId h : bc.hosts) EXPECT_EQ(bc.topo.degree(h), 2u);
  for (const auto& level : bc.level_switches) {
    for (const NodeId sw : level) EXPECT_EQ(bc.topo.degree(sw), 4u);
  }
}

TEST(Generators, JellyfishIsRegularAndSimple) {
  const JellyfishTopo j = make_jellyfish(12, 4, 1, /*seed=*/3);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (std::size_t i = 0; i < j.topo.link_count(); ++i) {
    const auto& l = j.topo.link(static_cast<std::uint32_t>(i));
    if (j.topo.is_host(l.a) || j.topo.is_host(l.b)) continue;
    auto key = std::minmax(l.a, l.b);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second)
        << "duplicate edge";
    EXPECT_NE(l.a, l.b);
  }
  for (const NodeId sw : j.switches) {
    EXPECT_EQ(j.topo.degree(sw), 4u + 1u);  // degree + one host
  }
}

TEST(Generators, JellyfishSeedsGiveDifferentGraphs) {
  const JellyfishTopo a = make_jellyfish(12, 4, 0, 1);
  const JellyfishTopo b = make_jellyfish(12, 4, 0, 2);
  bool differ = false;
  for (std::size_t i = 0; i < a.topo.link_count() && !differ; ++i) {
    const auto& la = a.topo.link(static_cast<std::uint32_t>(i));
    const auto& lb = b.topo.link(static_cast<std::uint32_t>(i));
    differ = la.a != lb.a || la.b != lb.b;
  }
  EXPECT_TRUE(differ);
}

}  // namespace
}  // namespace dcdl
