// §1's headline claim: "While transient loops will disappear by
// themselves soon, deadlocks caused by them are not transient. Deadlocks
// cannot recover automatically even after the problems that cause them
// have been fixed."
#include <gtest/gtest.h>

#include "dcdl/analysis/boundary.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/scenarios/scenario.hpp"

namespace dcdl::scenarios {
namespace {

using namespace dcdl::literals;
using analysis::BoundaryModel;

TEST(TransientLoop, DeadlockOutlivesTheLoop) {
  TransientLoopParams p;  // loop window [1 ms, 3 ms), threshold 5 Gbps
  p.inject = Rate::gbps(10);
  Scenario s = make_transient_loop(p);
  s.sim->run_until(10_ms);  // 7 ms after the routes were repaired
  // Delivery stopped permanently: trapped bytes remain after drain.
  const auto drain = analysis::stop_and_drain(*s.net, 20_ms);
  EXPECT_TRUE(drain.deadlocked);
  EXPECT_GT(drain.trapped_bytes, 0);
}

TEST(TransientLoop, BelowThresholdRecoversCompletely) {
  TransientLoopParams p;
  p.inject = Rate::gbps(3);  // below n*B/TTL = 5 Gbps
  Scenario s = make_transient_loop(p);
  s.sim->run_until(10_ms);
  const auto delivered_10ms =
      s.net->host_at(s.flows[0].dst_host).delivered_bytes(1);
  s.sim->run_until(12_ms);
  const auto delivered_12ms =
      s.net->host_at(s.flows[0].dst_host).delivered_bytes(1);
  EXPECT_GT(delivered_12ms, delivered_10ms) << "delivery resumed";
  EXPECT_FALSE(analysis::stop_and_drain(*s.net, 20_ms).deadlocked);
}

TEST(TransientLoop, DeliveryHaltsAfterDeadlock) {
  TransientLoopParams p;
  p.inject = Rate::gbps(10);
  Scenario s = make_transient_loop(p);
  s.sim->run_until(6_ms);
  const auto at6 = s.net->host_at(s.flows[0].dst_host).delivered_bytes(1);
  s.sim->run_until(10_ms);
  const auto at10 = s.net->host_at(s.flows[0].dst_host).delivered_bytes(1);
  EXPECT_EQ(at6, at10) << "no packet escapes a deadlocked loop";
}

TEST(TransientLoop, NoLoopNoDeadlockControl) {
  // Control: identical setup but the loop window never opens.
  TransientLoopParams p;
  p.inject = Rate::gbps(10);
  p.loop_start = 1000_sec;  // never (within the run)
  Scenario s = make_transient_loop(p);
  s.sim->run_until(10_ms);
  // 10 Gbps for 10 ms = 12.5 MB delivered.
  EXPECT_NEAR(
      static_cast<double>(
          s.net->host_at(s.flows[0].dst_host).delivered_bytes(1)),
      12.5e6, 0.5e6);
  EXPECT_FALSE(analysis::stop_and_drain(*s.net, 20_ms).deadlocked);
}

TEST(TransientLoop, ShortLoopWindowMayNotDeadlock) {
  // The loop must live long enough for queues to reach Xoff; a 10 us
  // window at 6 Gbps injects far too little.
  TransientLoopParams p;
  p.inject = Rate::gbps(6);
  p.loop_duration = 10_us;
  Scenario s = make_transient_loop(p);
  s.sim->run_until(10_ms);
  EXPECT_FALSE(analysis::stop_and_drain(*s.net, 20_ms).deadlocked);
}

TEST(TransientLoop, TtlClassMitigationPreventsPersistence) {
  // §4 TTL-banded classes: with band 1 over 8 classes the effective TTL in
  // each class is 1 <= loop length, so the loop cannot deadlock and the
  // network recovers when routes are repaired.
  TransientLoopParams p;
  p.inject = Rate::gbps(10);
  p.ttl = 8;
  p.num_classes = 8;
  p.ttl_class_band = 1;
  Scenario s = make_transient_loop(p);
  s.sim->run_until(10_ms);
  EXPECT_FALSE(analysis::stop_and_drain(*s.net, 20_ms).deadlocked);
}

TEST(TransientLoop, SameSetupWithoutMitigationDeadlocks) {
  // Companion to the test above: identical parameters minus the class
  // banding deadlock as usual (threshold n*B/TTL = 10 Gbps, greedy > that
  // after PFC shaping bursts). Use a clearly supercritical rate.
  TransientLoopParams p;
  p.inject = Rate::gbps(15);
  p.ttl = 8;
  Scenario s = make_transient_loop(p);
  s.sim->run_until(10_ms);
  EXPECT_TRUE(analysis::stop_and_drain(*s.net, 20_ms).deadlocked);
}

}  // namespace
}  // namespace dcdl::scenarios
