#include <gtest/gtest.h>

#include "dcdl/common/units.hpp"

namespace dcdl {
namespace {

using namespace dcdl::literals;

TEST(Time, LiteralsAndAccessors) {
  EXPECT_EQ((1_ns).ps(), 1'000);
  EXPECT_EQ((1_us).ps(), 1'000'000);
  EXPECT_EQ((1_ms).ps(), 1'000'000'000);
  EXPECT_EQ((1_sec).ps(), 1'000'000'000'000);
  EXPECT_DOUBLE_EQ((1500_ns).us(), 1.5);
  EXPECT_DOUBLE_EQ((2500_us).ms(), 2.5);
}

TEST(Time, Arithmetic) {
  EXPECT_EQ(1_us + 500_ns, Time{1'500'000});
  EXPECT_EQ(1_us - 500_ns, 500_ns);
  EXPECT_EQ(3 * (10_ns), 30_ns);
  EXPECT_EQ((100_ns) / 4, 25_ns);
  Time t = 1_us;
  t += 1_us;
  EXPECT_EQ(t, 2_us);
  t -= 500_ns;
  EXPECT_EQ(t, Time{1'500'000});
}

TEST(Time, Ordering) {
  EXPECT_LT(1_ns, 1_us);
  EXPECT_GT(Time::max(), 1000_sec);
  EXPECT_EQ(Time::zero().ps(), 0);
}

TEST(Rate, Constructors) {
  EXPECT_EQ(Rate::gbps(40).bps(), 40'000'000'000);
  EXPECT_EQ(Rate::mbps(100).bps(), 100'000'000);
  EXPECT_TRUE(Rate::zero().is_zero());
  EXPECT_FALSE(Rate::gbps(1).is_zero());
  EXPECT_DOUBLE_EQ(Rate::gbps(40).as_gbps(), 40.0);
}

TEST(SerializationTime, ExactAt40G) {
  // 1000 bytes at 40 Gbps is exactly 200 ns — the paper's base case.
  EXPECT_EQ(serialization_time(1000, Rate::gbps(40)), 200_ns);
  // 64-byte control frame at 40 Gbps: 12.8 ns, rounded up to the ps.
  EXPECT_EQ(serialization_time(64, Rate::gbps(40)).ps(), 12'800);
}

TEST(SerializationTime, RoundsUpNeverDown) {
  // 1000 bytes at 3 Gbps = 8000/3 us: not an integral ps count.
  const Time t = serialization_time(1000, Rate::gbps(3));
  EXPECT_GE(static_cast<double>(t.ps()) * 3e9, 8000.0 * 1e12 / 1e3 * 3e-3)
      << "must not finish early";
  EXPECT_EQ(t.ps(), (8000 * 1'000'000'000'000LL + 2'999'999'999) /
                        3'000'000'000LL);
}

TEST(SerializationTime, ScalesLinearly) {
  const Time one = serialization_time(1500, Rate::gbps(10));
  const Time ten = serialization_time(15000, Rate::gbps(10));
  EXPECT_EQ(ten.ps(), one.ps() * 10);
}

TEST(BytesIn, InverseOfSerialization) {
  // 40 Gbps for 1 ms = 5 MB.
  EXPECT_EQ(bytes_in(Rate::gbps(40), 1_ms), 5'000'000);
  EXPECT_EQ(bytes_in(Rate::gbps(1), 8_us), 1'000);
}

TEST(Formatting, HumanReadable) {
  EXPECT_EQ((1500_us).to_string(), "1.500ms");
  EXPECT_EQ(Rate::gbps(40).to_string(), "40.000Gbps");
  EXPECT_EQ(Rate::mbps(5).to_string(), "5.000Mbps");
}

}  // namespace
}  // namespace dcdl
