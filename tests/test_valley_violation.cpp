// §2's cited real-world case (Guo et al., SIGCOMM'16): cyclic buffer
// dependency — and deadlock — inside a *tree* fabric, caused by paths
// that violate up-down (valley-free) routing.
#include <gtest/gtest.h>

#include "dcdl/analysis/bdg.hpp"
#include "dcdl/analysis/risk.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/stats/pause_log.hpp"

namespace dcdl::scenarios {
namespace {

using namespace dcdl::literals;

TEST(ValleyViolation, ValleyPathsCreateACycleInATree) {
  Scenario s = make_valley_violation(ValleyViolationParams{});
  const auto bdg = analysis::BufferDependencyGraph::build(*s.net, s.flows);
  ASSERT_TRUE(bdg.has_cycle());
  EXPECT_EQ(bdg.cycles().size(), 1u);
  EXPECT_EQ(bdg.cycles()[0].size(), 4u);  // two leaves + two spines
}

TEST(ValleyViolation, TwoValleyFlowsAloneAreSafe) {
  // The Figure-3 analogue inside a tree: the cycle exists, but both
  // unshared cycle links are slack and the fabric never deadlocks.
  ValleyViolationParams p;
  p.with_extra_flow = false;
  Scenario s = make_valley_violation(p);
  EXPECT_TRUE(
      analysis::BufferDependencyGraph::build(*s.net, s.flows).has_cycle());
  const auto risk = analysis::assess_deadlock_risk(*s.net, s.flows);
  ASSERT_EQ(risk.cycles.size(), 1u);
  EXPECT_EQ(risk.cycles[0].slack_links, 2);
  const RunSummary r = run_and_check(s, 20_ms, 10_ms);
  EXPECT_FALSE(r.deadlocked);
}

TEST(ValleyViolation, GreedyTrafficDeadlocks) {
  Scenario s = make_valley_violation(ValleyViolationParams{});
  const RunSummary r = run_and_check(s, 20_ms, 10_ms);
  EXPECT_TRUE(r.deadlocked);
  EXPECT_TRUE(r.detected_at.has_value());
}

TEST(ValleyViolation, RecordedCounterexampleToTheSlackRule) {
  // Honest negative: with the extra flow, max-min stable rates leave three
  // cycle links below 0.95 (the three flows all squeeze through L1->S1 at
  // ~13 Gbps each), so the slack-link heuristic predicts "safe" — yet the
  // packet simulation deadlocks (the start-up transient, with every source
  // blasting at line rate, latches the cycle before the fair shares
  // settle). Sufficiency is the paper's open problem and stays open; this
  // test pins the counterexample so the heuristic's limits are explicit.
  Scenario s = make_valley_violation(ValleyViolationParams{});
  const auto risk = analysis::assess_deadlock_risk(*s.net, s.flows);
  ASSERT_EQ(risk.cycles.size(), 1u);
  EXPECT_EQ(risk.cycles[0].slack_links, 3);
  EXPECT_FALSE(risk.deadlock_reachable());  // ...and yet (see
  // GreedyTrafficDeadlocks) the fabric locks up.
}

TEST(ValleyViolation, StrictUpDownIsTheFix) {
  ValleyViolationParams p;
  p.strict_up_down = true;
  Scenario s = make_valley_violation(p);
  EXPECT_TRUE(analysis::routing_deadlock_free(*s.net, s.flows));
  const RunSummary r = run_and_check(s, 20_ms, 10_ms);
  EXPECT_FALSE(r.deadlocked);
  // Healthy goodput: flows 1 and 3 share L1->S1 (~20 Gbps each), flow 2
  // runs uncontended (~40 Gbps).
  for (const auto& [flow, bytes] : r.delivered) {
    EXPECT_GT(bytes, 40'000'000) << "flow " << flow;
  }
}

TEST(ValleyViolation, AllCycleLinksEndUpPaused) {
  Scenario s = make_valley_violation(ValleyViolationParams{});
  stats::PauseEventLog log(*s.net);
  s.sim->run_until(20_ms);
  EXPECT_TRUE(log.ever_all_paused(s.cycle_queues, s.sim->now()));
  for (const auto& key : s.cycle_queues) {
    EXPECT_TRUE(log.paused_at_end(key));
  }
}

}  // namespace
}  // namespace dcdl::scenarios
