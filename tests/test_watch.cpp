// dcdl::watch: rule-engine state-machine edge cases (hysteresis, arming,
// dedup boundary ticks), end-to-end early-warning behaviour on the paper's
// scenarios (positive lead time over the DeadlockMonitor on the Fig. 2
// loop and the valley cascade, silence on below-boundary transients), and
// the dcdl.alerts.v1 artifact identity contract across --jobs x --shards.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "dcdl/analysis/deadlock.hpp"
#include "dcdl/campaign/campaign.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/sim/sharded.hpp"
#include "dcdl/watch/export.hpp"
#include "dcdl/watch/rules.hpp"
#include "dcdl/watch/watch.hpp"

namespace dcdl::watch {
namespace {

using namespace dcdl::literals;
using namespace dcdl::scenarios;

// --------------------------------------------------------------- RuleEngine

const std::vector<std::string> kSignals = {"x", "y"};

AlertRule rule(double fire, double clear, int for_ticks = 1,
               Time dedup = Time::zero(),
               Severity sev = Severity::kWarn) {
  return {"r", "x", sev, fire, clear, for_ticks, dedup};
}

TEST(RuleEngineTest, HysteresisFiresAtThresholdAndClearsBelowClear) {
  RuleEngine eng({rule(10.0, 5.0)}, kSignals);
  eng.step(Time{100}, {4.0, 0.0});
  EXPECT_TRUE(eng.events().empty()) << "below fire_above: no edge";
  eng.step(Time{200}, {10.0, 0.0});
  ASSERT_EQ(eng.events().size(), 1u) << "fire_above is inclusive";
  EXPECT_TRUE(eng.events()[0].firing);
  EXPECT_DOUBLE_EQ(eng.events()[0].value, 10.0);
  eng.step(Time{300}, {7.0, 0.0});
  EXPECT_EQ(eng.events().size(), 1u)
      << "inside the hysteresis band: still firing, no edge";
  EXPECT_TRUE(eng.firing(0));
  eng.step(Time{400}, {5.0, 0.0});
  EXPECT_EQ(eng.events().size(), 1u) << "clear_below is exclusive";
  eng.step(Time{500}, {4.9, 0.0});
  ASSERT_EQ(eng.events().size(), 2u);
  EXPECT_FALSE(eng.events()[1].firing);
  EXPECT_FALSE(eng.firing(0));
  EXPECT_EQ(eng.fires(Severity::kWarn), 1u);
}

TEST(RuleEngineTest, ArmingRequiresConsecutiveTicksAndResetsOnDip) {
  RuleEngine eng({rule(10.0, 5.0, /*for_ticks=*/3)}, kSignals);
  const double on = 12.0, off = 2.0;
  // Two over-threshold ticks, a dip, then three: only the second streak
  // completes the arming.
  int t = 0;
  for (const double v : {on, on, off, on, on}) {
    eng.step(Time{++t * 100}, {v, 0.0});
    EXPECT_TRUE(eng.events().empty()) << "tick " << t;
  }
  eng.step(Time{++t * 100}, {on, 0.0});
  ASSERT_EQ(eng.events().size(), 1u);
  EXPECT_EQ(eng.events()[0].t.ps(), 600);
}

TEST(RuleEngineTest, DedupSuppressesRefireInsideWindowInclusiveBoundary) {
  // dedup = 300; ticks every 100. Fire at t=100, clear, re-fire at t=300
  // (delta 200 < 300: suppressed, together with its clear), then the next
  // attempt at exactly t=400 (delta 300 == dedup) IS emitted.
  RuleEngine eng({rule(10.0, 5.0, 1, Time{300})}, kSignals);
  eng.step(Time{100}, {12.0, 0.0});  // fire (emitted)
  eng.step(Time{200}, {1.0, 0.0});   // clear (emitted)
  eng.step(Time{300}, {12.0, 0.0});  // fire (suppressed: 200 < 300)
  eng.step(Time{350}, {1.0, 0.0});   // clear of a suppressed fire: silent
  ASSERT_EQ(eng.events().size(), 2u);
  EXPECT_EQ(eng.suppressed(), 1u);
  eng.step(Time{400}, {12.0, 0.0});  // boundary tick: emitted
  ASSERT_EQ(eng.events().size(), 3u);
  EXPECT_TRUE(eng.events()[2].firing);
  EXPECT_EQ(eng.events()[2].t.ps(), 400);
  EXPECT_EQ(eng.rule_fires(0), 2u) << "emitted fires only";
  // The emitted stream stays strictly fire/clear alternating per rule.
  bool expect_fire = true;
  for (const AlertEvent& ev : eng.events()) {
    EXPECT_EQ(ev.firing, expect_fire);
    expect_fire = !expect_fire;
  }
}

TEST(RuleEngineTest, SeverityAccountingAndActiveCeiling) {
  std::vector<AlertRule> rules;
  rules.push_back({"low", "x", Severity::kInfo, 1.0, 1.0, 1, Time::zero()});
  rules.push_back(
      {"high", "y", Severity::kCritical, 1.0, 1.0, 1, Time::zero()});
  RuleEngine eng(rules, kSignals);
  EXPECT_FALSE(eng.active_ceiling().has_value());
  eng.step(Time{100}, {1.0, 0.0});
  ASSERT_TRUE(eng.active_ceiling().has_value());
  EXPECT_EQ(*eng.active_ceiling(), Severity::kInfo);
  eng.step(Time{200}, {1.0, 1.0});
  EXPECT_EQ(*eng.active_ceiling(), Severity::kCritical);
  EXPECT_EQ(eng.fires(Severity::kInfo), 1u);
  EXPECT_EQ(eng.fires(Severity::kCritical), 1u);
  ASSERT_TRUE(eng.first_fire(Severity::kCritical).has_value());
  EXPECT_EQ(eng.first_fire(Severity::kCritical)->ps(), 200);
}

TEST(RuleEngineTest, RejectsBadRules) {
  EXPECT_THROW(RuleEngine({{"r", "nope", Severity::kWarn, 1, 0, 1,
                            Time::zero()}},
                          kSignals),
               std::runtime_error);
  EXPECT_THROW(RuleEngine({{"r", "x", Severity::kWarn, 1.0, 2.0, 1,
                            Time::zero()}},
                          kSignals),
               std::runtime_error);
  EXPECT_THROW(RuleEngine({rule(1, 0), rule(1, 0)}, kSignals),
               std::runtime_error)
      << "duplicate rule names";
}

TEST(RuleEngineTest, EventLogIsBoundedButStateKeepsAdvancing) {
  RuleEngine eng({rule(10.0, 5.0)}, kSignals, /*max_events=*/3);
  for (int k = 0; k < 4; ++k) {
    eng.step(Time{k * 200 + 100}, {12.0, 0.0});
    eng.step(Time{k * 200 + 200}, {1.0, 0.0});
  }
  EXPECT_EQ(eng.events().size(), 3u);
  EXPECT_EQ(eng.dropped_events(), 5u);
  EXPECT_EQ(eng.rule_fires(0), 4u) << "counters keep the full truth";
}

// ------------------------------------------------------- RunWatch scenarios

struct WatchedRun {
  std::optional<Time> confirmed_at;       ///< DeadlockMonitor verdict
  std::optional<Time> first_critical;     ///< watch early warning
  std::uint64_t critical_fires = 0;
  std::uint64_t warn_fires = 0;
  std::vector<std::pair<std::string, double>> summary;
};

WatchedRun watch_scenario(Scenario s, Time run_for) {
  RunWatch watch(*s.net, s.flows);
  analysis::DeadlockMonitor monitor(*s.net);  // 100 us poll, 1 ms dwell
  monitor.start(s.sim->now(), run_for);
  watch.start(*s.sim, run_for);
  s.sim->run_until(run_for);
  WatchedRun out;
  out.confirmed_at = monitor.detected_at();
  out.first_critical = watch.first_fire(Severity::kCritical);
  out.critical_fires = watch.engine().fires(Severity::kCritical);
  out.warn_fires = watch.engine().fires(Severity::kWarn);
  out.summary = watch.summary();
  return out;
}

TEST(RunWatchTest, CriticalAlertLeadsMonitorConfirmOnFig2Loop) {
  RoutingLoopParams p;
  p.inject = Rate::gbps(7);  // above the Eq. 3 boundary: deadlock
  const WatchedRun r = watch_scenario(make_routing_loop(p), 20_ms);
  ASSERT_TRUE(r.confirmed_at.has_value()) << "the loop must deadlock";
  ASSERT_TRUE(r.first_critical.has_value())
      << "the watcher must raise a critical alert";
  EXPECT_LT(r.first_critical->ps(), r.confirmed_at->ps())
      << "early warning: critical strictly before the dwell-confirmed "
         "verdict";
}

TEST(RunWatchTest, CriticalAlertLeadsMonitorConfirmOnValleyCascade) {
  ValleyViolationParams p;  // with_extra_flow: the deadlocking Figure-4
  const WatchedRun r = watch_scenario(make_valley_violation(p), 20_ms);
  ASSERT_TRUE(r.confirmed_at.has_value()) << "the cascade must deadlock";
  ASSERT_TRUE(r.first_critical.has_value());
  EXPECT_LT(r.first_critical->ps(), r.confirmed_at->ps());
}

TEST(RunWatchTest, NoCriticalOnBelowBoundaryTransientLoop) {
  TransientLoopParams p;
  p.inject = Rate::gbps(4);  // below the 5 Gbps Eq. 3 boundary
  const WatchedRun r = watch_scenario(make_transient_loop(p), 6_ms);
  EXPECT_FALSE(r.confirmed_at.has_value())
      << "below the boundary the transient loop drains by itself";
  EXPECT_EQ(r.critical_fires, 0u)
      << "a transient must never page: zero critical alerts";
}

TEST(RunWatchTest, SummaryIsDeterministicAcrossRuns) {
  const auto run = [] {
    RoutingLoopParams p;
    p.inject = Rate::gbps(7);
    return watch_scenario(make_routing_loop(p), 4_ms).summary;
  };
  EXPECT_EQ(run(), run());
}

TEST(RunWatchTest, SummaryLayoutCarriesRulesAndSignalMaxima) {
  RoutingLoopParams p;
  p.inject = Rate::gbps(7);
  const WatchedRun r = watch_scenario(make_routing_loop(p), 4_ms);
  const auto get = [&](const std::string& key) -> std::optional<double> {
    for (const auto& [name, value] : r.summary) {
      if (name == key) return value;
    }
    return std::nullopt;
  };
  ASSERT_TRUE(get("ticks").has_value());
  EXPECT_DOUBLE_EQ(*get("ticks"), 40);  // 4 ms at 100 us
  EXPECT_GE(*get("fired.critical"), 1.0);
  EXPECT_GT(*get("first_critical_ms"), 0.0);
  EXPECT_GE(*get("rule.deadlock_imminent.fires"), 1.0);
  EXPECT_GE(*get("sig.wedge_queues.max"), 2.0)
      << "the wait-for cycle has at least two queues";
  EXPECT_GT(*get("sig.pause_frac.max"), 0.0);
}

// ------------------------------------------------- artifact identity class

std::string alerts_for_shards(int shards) {
  std::optional<ScopedShardRequest> req;
  if (shards >= 1) req.emplace(shards);
  RoutingLoopParams p;
  p.inject = Rate::gbps(7);
  Scenario s = make_routing_loop(p);
  req.reset();
  RunWatch watch(*s.net, s.flows);
  watch.start(*s.sim, 4_ms);
  s.sim->run_until(4_ms);
  return to_alerts_jsonl(watch, *s.topo);
}

TEST(AlertsArtifactTest, ByteIdenticalAcrossShardCounts) {
  // The watcher samples at window barriers on the control simulator, so
  // the dcdl.alerts.v1 stream is one byte sequence for every shard count
  // >= 1; legacy --shards 0 keeps its own identity class.
  const std::string s1 = alerts_for_shards(1);
  EXPECT_EQ(s1, alerts_for_shards(2));
  EXPECT_EQ(s1, alerts_for_shards(4));
  EXPECT_NE(s1.find("\"schema\":\"dcdl.alerts.v1\""), std::string::npos);
  EXPECT_NE(s1.find("\"kind\":\"fire\""), std::string::npos)
      << "the above-boundary loop must produce alert edges";
  EXPECT_NE(s1.find("\"summary\":{"), std::string::npos);
  const std::string s0 = alerts_for_shards(0);
  EXPECT_NE(s0.find("\"schema\":\"dcdl.alerts.v1\""), std::string::npos);
}

TEST(AlertsArtifactTest, PerfettoInstantsRenderDeterministically) {
  RoutingLoopParams p;
  p.inject = Rate::gbps(7);
  Scenario s = make_routing_loop(p);
  RunWatch watch(*s.net, s.flows);
  watch.start(*s.sim, 4_ms);
  s.sim->run_until(4_ms);
  const std::string json = to_perfetto_alerts(watch, *s.topo);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"critical deadlock_imminent\""),
            std::string::npos);
  EXPECT_EQ(json, to_perfetto_alerts(watch, *s.topo));
}

TEST(AlertsArtifactTest, ExecutorAlertRecordsIdenticalAcrossJobs) {
  // The campaign path: alert summaries embedded in v6 records depend only
  // on the spec, never on --jobs, and the deadlocking cell carries a
  // positive lead_ms.
  using namespace dcdl::campaign;
  ScenarioRegistry reg;
  register_builtin_scenarios(reg);
  SweepSpec spec;
  spec.scenario = "routing_loop";
  spec.axes = parse_grid("inject=4..7gbps:2");
  spec.seeds_per_cell = 1;
  spec.run_for = 4_ms;
  spec.drain_grace = 10_ms;
  const std::vector<RunSpec> runs = expand(spec);

  ExecutorOptions one, four;
  one.jobs = 1;
  four.jobs = 4;
  const CampaignResult a = CampaignExecutor(reg, one).run(runs);
  const CampaignResult b = CampaignExecutor(reg, four).run(runs);
  ASSERT_EQ(a.records.size(), b.records.size());
  double lead_ms = -1;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].alerts, b.records[i].alerts);
    EXPECT_FALSE(a.records[i].alerts.empty());
    for (const auto& [name, value] : a.records[i].alerts) {
      if (name == "lead_ms") lead_ms = value;
    }
  }
  EXPECT_GT(lead_ms, 0.0)
      << "the above-boundary cell must report a positive early-warning "
         "lead time";
  const std::string json = to_json(a);
  EXPECT_NE(json.find("\"alerts\":{\"ticks\":"), std::string::npos);
  EXPECT_NE(json.find("\"rule.deadlock_imminent.fires\""),
            std::string::npos);
}

}  // namespace
}  // namespace dcdl::watch
