// Reactive recovery: the PFC storm watchdog breaks confirmed deadlocks at
// the cost of dropped packets (§1: "inelegant, disruptive, last resort").
#include <gtest/gtest.h>

#include "dcdl/device/host.hpp"
#include "dcdl/mitigation/watchdog.hpp"
#include "dcdl/scenarios/scenario.hpp"

namespace dcdl::mitigation {
namespace {

using namespace dcdl::literals;
using namespace dcdl::scenarios;

TEST(Watchdog, BreaksTheFourSwitchDeadlock) {
  FourSwitchParams p;
  p.with_flow3 = true;
  Scenario s = make_four_switch(p);
  PfcWatchdog wd(*s.net, PfcWatchdog::Params{});
  wd.start(Time::zero(), 100_ms);
  s.sim->run_until(40_ms);

  EXPECT_GT(wd.resets(), 0u);
  EXPECT_GT(wd.packets_dropped(), 0u);  // the disruption is real
  // Traffic keeps flowing: delivery at 35-40 ms is non-zero.
  const NodeId dst1 = s.flows[0].dst_host;
  const auto at40 = s.net->host_at(dst1).delivered_bytes(1);
  s.sim->run_until(45_ms);
  EXPECT_GT(s.net->host_at(dst1).delivered_bytes(1), at40);
  // And the network drains clean once flows stop.
  EXPECT_FALSE(analysis::stop_and_drain(*s.net, 30_ms).deadlocked);
}

TEST(Watchdog, DoesNotFireOnHealthyCongestion) {
  // Figure 3: pauses last microseconds, far below the storm threshold.
  Scenario s = make_four_switch(FourSwitchParams{});
  PfcWatchdog wd(*s.net, PfcWatchdog::Params{});
  wd.start(Time::zero(), 30_ms);
  s.sim->run_until(30_ms);
  EXPECT_EQ(wd.resets(), 0u);
  EXPECT_EQ(wd.packets_dropped(), 0u);
  EXPECT_EQ(s.net->drops(DropReason::kWatchdogReset), 0u);
}

TEST(Watchdog, RecoversRoutingLoopVictims) {
  // A deadlocked routing loop also wedges the host; the watchdog flushes
  // the wedged queues so the loop resumes draining by TTL.
  RoutingLoopParams p;
  p.inject = Rate::gbps(9);
  Scenario s = make_routing_loop(p);
  PfcWatchdog wd(*s.net, PfcWatchdog::Params{});
  wd.start(Time::zero(), 100_ms);
  s.sim->run_until(30_ms);
  EXPECT_GT(wd.resets(), 0u);
  EXPECT_FALSE(analysis::stop_and_drain(*s.net, 30_ms).deadlocked);
}

TEST(Watchdog, ResetEventsIdentifyTheCycle) {
  FourSwitchParams p;
  p.with_flow3 = true;
  Scenario s = make_four_switch(p);
  PfcWatchdog wd(*s.net, PfcWatchdog::Params{});
  wd.start(Time::zero(), 100_ms);
  s.sim->run_until(20_ms);
  ASSERT_GT(wd.resets(), 0u);
  // Every reset hits a ring switch egress (A..D are nodes 0..3).
  for (const auto& ev : wd.reset_events()) {
    EXPECT_LT(ev.sw, 4u);
    EXPECT_GE(ev.at, Time{2'000'000'000}) << "storm threshold honoured";
  }
}

TEST(Watchdog, WatchdogDropsAreAccounted) {
  FourSwitchParams p;
  p.with_flow3 = true;
  Scenario s = make_four_switch(p);
  PfcWatchdog wd(*s.net, PfcWatchdog::Params{});
  wd.start(Time::zero(), 100_ms);
  s.sim->run_until(30_ms);
  EXPECT_EQ(s.net->drops(DropReason::kWatchdogReset), wd.packets_dropped());
  // Packet conservation including the watchdog drops.
  const auto drain = analysis::stop_and_drain(*s.net, 30_ms);
  std::uint64_t sent = 0, delivered = 0;
  for (const FlowSpec& f : s.flows) {
    sent += s.net->host_at(f.src_host).sent_packets(f.id);
    delivered += s.net->host_at(f.dst_host).delivered_packets(f.id);
  }
  EXPECT_EQ(sent, delivered + s.net->drops(DropReason::kWatchdogReset) +
                      static_cast<std::uint64_t>(drain.trapped_bytes) / 1000);
}

}  // namespace
}  // namespace dcdl::mitigation
