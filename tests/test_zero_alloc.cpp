// Steady-state allocation audit.
//
// The hot-path refactor's headline invariant: once a scenario's arenas have
// grown to their high-water marks (event slab, packet rings, dense
// accounting vectors), the simulation loop performs ZERO heap allocations.
// This test replaces the global allocator with a counting one and asserts
// an exact zero over a 100k+ event window of the paper's routing-loop
// scenario — every schedule/fire/cancel, packet hop, PFC pause/resume and
// TTL drop in the window must run out of recycled storage.
//
// The overrides are global for this binary (gtest allocates too), so the
// measurement brackets exactly one run_until call with no test machinery in
// between.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/telemetry/metrics.hpp"
#include "dcdl/telemetry/recorder.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) { return ::operator new(n); }

void* operator new(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  if (void* p = std::aligned_alloc(a, (n + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace dcdl {
namespace {

using namespace dcdl::literals;
using namespace dcdl::scenarios;

TEST(ZeroAlloc, RoutingLoopSteadyStateAllocatesNothing) {
  // Below-boundary routing loop (Fig. 2 regime that reaches a perpetual
  // steady state): hosts inject, packets circulate the loop, TTLs expire,
  // PFC duty-cycles — indefinitely.
  RoutingLoopParams p;
  p.inject = Rate::gbps(4);
  Scenario s = make_routing_loop(p);

  // Warm-up: grow every arena to its high-water mark.
  s.sim->run_until(2_ms);

  const std::uint64_t events_before = s.sim->events_executed();
  const std::uint64_t allocs_before =
      g_allocs.load(std::memory_order_relaxed);
  s.sim->run_until(12_ms);
  const std::uint64_t allocs =
      g_allocs.load(std::memory_order_relaxed) - allocs_before;
  const std::uint64_t events = s.sim->events_executed() - events_before;

  ASSERT_GE(events, 100'000u) << "window too small to be meaningful";
  EXPECT_EQ(allocs, 0u) << "heap allocations leaked into the steady state "
                           "across " << events << " events";
}

TEST(ZeroAlloc, TelemetryAttachedSteadyStateAllocatesNothing) {
  // The observability invariant: a fully attached metrics registry AND a
  // flight recorder subscribed to every trace slot (including per-packet
  // queue_bytes) must not add a single allocation to the steady state —
  // record() is a masked store, counter bumps are dense vector ops.
  RoutingLoopParams p;
  p.inject = Rate::gbps(4);
  Scenario s = make_routing_loop(p);
  telemetry::RunTelemetry run_telemetry(*s.net);
  telemetry::FlightRecorder recorder;  // default 64Ki-record ring
  recorder.attach(*s.net);

  s.sim->run_until(2_ms);  // warm-up: arenas reach high water

  const std::uint64_t events_before = s.sim->events_executed();
  const std::uint64_t records_before = recorder.total_recorded();
  const std::uint64_t allocs_before =
      g_allocs.load(std::memory_order_relaxed);
  s.sim->run_until(12_ms);
  const std::uint64_t allocs =
      g_allocs.load(std::memory_order_relaxed) - allocs_before;
  const std::uint64_t events = s.sim->events_executed() - events_before;

  ASSERT_GE(events, 100'000u) << "window too small to be meaningful";
  EXPECT_GT(recorder.total_recorded(), records_before)
      << "recorder saw no traffic; the measurement is vacuous";
  EXPECT_GT(run_telemetry.registry().counter_value(
                run_telemetry.ids().tx_starts), 0u);
  EXPECT_EQ(allocs, 0u) << "telemetry leaked heap allocations into the "
                           "steady state across " << events << " events";
}

TEST(ZeroAlloc, EventChurnSteadyStateAllocatesNothing) {
  // Pure scheduler churn: self-rescheduling timers exercise the slab
  // free-list recycling with no device layer involved.
  Simulator sim;
  struct Churn {
    Simulator& sim;
    std::uint64_t fired = 0;
    void tick() {
      ++fired;
      sim.schedule_in(1_ns, [this] { tick(); });
    }
  } churn{sim};
  for (int i = 0; i < 16; ++i) {
    sim.schedule_in(1_ns, [&churn] { churn.tick(); });
  }
  sim.run_until(1_us);  // warm-up: slab and heap reach high water

  const std::uint64_t allocs_before =
      g_allocs.load(std::memory_order_relaxed);
  sim.run_until(10_us);
  const std::uint64_t allocs =
      g_allocs.load(std::memory_order_relaxed) - allocs_before;

  ASSERT_GE(churn.fired, 100'000u);
  EXPECT_EQ(allocs, 0u);
}

}  // namespace
}  // namespace dcdl
