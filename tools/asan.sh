#!/usr/bin/env sh
# Builds the full test suite with -fsanitize=address,undefined and runs it,
# proving the hot-path memory machinery (event slab recycling, InplaceFn
# inline storage and relocation, RingQueue ring indexing, flow-slot dense
# accounting, thread-local arena hand-off) is free of lifetime and UB bugs.
#
#   tools/asan.sh [build-dir]          # default: build-asan
#
# -fno-sanitize-recover makes any UBSan hit fail the run instead of just
# printing; a clean exit means the entire suite is ASan+UBSan clean.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-asan"}

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"

cmake --build "$build_dir" -j"$(nproc)"

(cd "$build_dir" && ctest --output-on-failure -j"$(nproc)")

echo "asan.sh: full suite clean under AddressSanitizer + UBSanitizer"
