#!/usr/bin/env sh
# The one-command local CI gate: configure, build, and run the full test
# suite exactly as the tier-1 check does.
#
#   tools/ci.sh [build-dir]              # default: build
#   tools/ci.sh --sanitizers [build-dir] # additionally chain asan.sh and
#                                        # tsan.sh (their own build dirs)
#   tools/ci.sh --full [build-dir]       # sanitizers + the sharded
#                                        # determinism leg + the bench_perf
#                                        # regression gate against the
#                                        # committed BENCH_perf.json
#
# A clean exit means the tree is committable: every gtest suite passed;
# with --sanitizers the ASan+UBSan full suite and the TSan campaign +
# sharded-engine binaries are clean too; with --full the sharded engine
# additionally re-proves digest equality at 4 shards under TSan (the
# release-blocking determinism check) and the hot path held its events/sec
# baseline. The perf gate uses its own Release build dir (build-perf) —
# sanitizer and default builds are not valid timing baselines.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

sanitizers=0
perf=0
case "${1:-}" in
  --sanitizers)
    sanitizers=1
    shift
    ;;
  --full)
    sanitizers=1
    perf=1
    shift
    ;;
esac
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j"$(nproc)"
(cd "$build_dir" && ctest --output-on-failure -j"$(nproc)")

if [ "$perf" = 1 ]; then
  # Sharded determinism leg: the byte-identity suite (digests at 1/2/4/8
  # shards, summary + forensics equality at 4 shards) under ThreadSanitizer.
  # tsan.sh below runs the whole binary too; this explicit filtered pass is
  # the release-blocking check and fails fast before the perf gate.
  tsan_dir="$repo_root/build-tsan"
  cmake -B "$tsan_dir" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  cmake --build "$tsan_dir" --target test_sharded -j"$(nproc)"
  "$tsan_dir/tests/test_sharded" \
    --gtest_filter='ShardedDigest.*:ShardedRun.*'

  perf_dir="$repo_root/build-perf"
  cmake -B "$perf_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$perf_dir" --target bench_perf -j"$(nproc)"
  "$perf_dir/bench/bench_perf" --baseline "$repo_root/BENCH_perf.json"
fi

if [ "$sanitizers" = 1 ]; then
  "$repo_root/tools/asan.sh"
  "$repo_root/tools/tsan.sh"
fi

echo "ci.sh: all checks passed"
