#!/usr/bin/env sh
# The one-command local CI gate: configure, build, and run the full test
# suite exactly as the tier-1 check does.
#
#   tools/ci.sh [build-dir]              # default: build
#   tools/ci.sh --sanitizers [build-dir] # additionally chain asan.sh and
#                                        # tsan.sh (their own build dirs)
#
# A clean exit means the tree is committable: every gtest suite passed, and
# (with --sanitizers) the ASan+UBSan full suite and the TSan campaign
# binaries are clean too.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

sanitizers=0
if [ "${1:-}" = "--sanitizers" ]; then
  sanitizers=1
  shift
fi
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j"$(nproc)"
(cd "$build_dir" && ctest --output-on-failure -j"$(nproc)")

if [ "$sanitizers" = 1 ]; then
  "$repo_root/tools/asan.sh"
  "$repo_root/tools/tsan.sh"
fi

echo "ci.sh: all checks passed"
