#!/usr/bin/env sh
# The one-command local CI gate: configure, build, and run the full test
# suite exactly as the tier-1 check does.
#
#   tools/ci.sh [build-dir]              # default: build
#   tools/ci.sh --sanitizers [build-dir] # additionally chain asan.sh and
#                                        # tsan.sh (their own build dirs)
#   tools/ci.sh --full [build-dir]       # sanitizers + the sharded
#                                        # determinism leg + the bench_perf
#                                        # regression gate against the
#                                        # committed BENCH_perf.json
#
# A clean exit means the tree is committable: every gtest suite passed;
# with --sanitizers the ASan+UBSan full suite and the TSan campaign +
# sharded-engine + dataplane + hybrid binaries are clean too; with --full
# the sharded engine additionally re-proves digest equality at 4 shards
# under TSan (the release-blocking determinism check), the in-switch
# dataplane pipeline re-proves its recovery timeline byte-identical across
# shard counts and across campaign --jobs under TSan, the hybrid
# fluid/packet engine re-proves artifact byte-identity across
# --jobs x --shards and verdict agreement against the pure packet engine,
# and the hot path held its events/sec baseline. The perf gate uses its own Release build dir
# (build-perf) — sanitizer and default builds are not valid timing
# baselines.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

sanitizers=0
perf=0
case "${1:-}" in
  --sanitizers)
    sanitizers=1
    shift
    ;;
  --full)
    sanitizers=1
    perf=1
    shift
    ;;
esac
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j"$(nproc)"
(cd "$build_dir" && ctest --output-on-failure -j"$(nproc)")

if [ "$perf" = 1 ]; then
  # Sharded determinism leg: the byte-identity suite (digests at 1/2/4/8
  # shards, summary + forensics equality at 4 shards) under ThreadSanitizer.
  # tsan.sh below runs the whole binary too; this explicit filtered pass is
  # the release-blocking check and fails fast before the perf gate.
  tsan_dir="$repo_root/build-tsan"
  cmake -B "$tsan_dir" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  cmake --build "$tsan_dir" --target test_sharded -j"$(nproc)"
  "$tsan_dir/tests/test_sharded" \
    --gtest_filter='ShardedDigest.*:ShardedRun.*'

  # Dataplane determinism leg: the in-switch detection/recovery pipeline
  # must produce the same detection/recovery timeline whatever the thread
  # layout. Two angles, both under TSan: the gtest shard-invariance suite
  # (legacy engine vs 1/2/4 shards inside one run), and a dcdl_sweep
  # recovery campaign whose JSON artifact must be byte-identical across
  # --jobs x --shards combinations.
  cmake --build "$tsan_dir" --target test_dataplane dcdl_sweep -j"$(nproc)"
  "$tsan_dir/tests/test_dataplane" --gtest_filter='DataplaneSharded.*'
  dp_sweep() {
    "$tsan_dir/examples/dcdl_sweep" --scenario valley \
      --set "dataplane=reroute" --seeds 2 --run_ms 6 --jobs "$1" \
      --shards "$2" --quiet --out "$3"
  }
  # Two identity classes (telemetry carries engine-internal counters, so
  # legacy shards=0 and sharded shards>=1 artifacts differ by design):
  # --jobs must not matter within either engine, --shards must not matter
  # within the sharded engine.
  dp_sweep 1 0 "$tsan_dir/dp_j1.json"
  dp_sweep 4 0 "$tsan_dir/dp_j4.json"
  dp_sweep 1 1 "$tsan_dir/dp_s1.json"
  dp_sweep 4 2 "$tsan_dir/dp_s2.json"
  cmp "$tsan_dir/dp_j1.json" "$tsan_dir/dp_j4.json"
  cmp "$tsan_dir/dp_s1.json" "$tsan_dir/dp_s2.json"

  # Hybrid-engine equivalence leg: the fluid/packet zoom must perturb
  # neither verdicts nor determinism. The gtest byte-identity suite runs
  # under TSan (the controller's step events replay through the window
  # barrier), then a routing-loop sweep with the zoom on must be
  # byte-identical across --jobs x --shards, and its core verdict columns
  # (through pause_assertions — event counts legitimately differ, the
  # controller schedules its own steps) must match the same sweep with the
  # zoom off.
  cmake --build "$tsan_dir" --target test_hybrid -j"$(nproc)"
  "$tsan_dir/tests/test_hybrid" --gtest_filter='HybridExecutor.*'
  hy_sweep() {
    "$tsan_dir/examples/dcdl_sweep" --scenario routing_loop \
      --grid "inject=4..6gbps:2" --seeds 2 --run_ms 6 --hybrid "$1" \
      --jobs "$2" --shards "$3" --quiet --out "$4" --csv "$5"
  }
  hy_sweep risk 1 1 "$tsan_dir/hy_s1.json" "$tsan_dir/hy_s1.csv"
  hy_sweep risk 4 2 "$tsan_dir/hy_s2.json" "$tsan_dir/hy_s2.csv"
  cmp "$tsan_dir/hy_s1.json" "$tsan_dir/hy_s2.json"
  hy_sweep off 1 1 "$tsan_dir/hy_off.json" "$tsan_dir/hy_off.csv"
  cut -d, -f1-11 "$tsan_dir/hy_off.csv" > "$tsan_dir/hy_off_core.csv"
  cut -d, -f1-11 "$tsan_dir/hy_s1.csv" > "$tsan_dir/hy_risk_core.csv"
  cmp "$tsan_dir/hy_off_core.csv" "$tsan_dir/hy_risk_core.csv"

  # Probe time-series leg: the always-on dcdl::probe sampler snapshots at
  # window barriers, so its `dcdl.timeseries.v1` artifact obeys the same
  # two identity classes as the telemetry JSON — byte-identical across
  # --jobs within either engine, and across shard counts within the
  # sharded engine. dcdl_report over the same campaign directory must also
  # be a pure function of its inputs (two invocations, identical bytes).
  cmake --build "$tsan_dir" --target test_probe dcdl_report -j"$(nproc)"
  "$tsan_dir/tests/test_probe"
  ts_sweep() {
    out_dir="$tsan_dir/ts_$4"
    rm -rf "$out_dir"
    "$tsan_dir/examples/dcdl_sweep" --scenario routing_loop \
      --grid "inject=4..6gbps:2" --seeds 1 --run_ms 4 --jobs "$1" \
      --shards "$2" --quiet --trace "$out_dir" \
      --out "$out_dir/campaign.json"
  }
  ts_sweep 1 0 x j1s0
  ts_sweep 4 0 x j4s0
  ts_sweep 1 1 x j1s1
  ts_sweep 4 2 x j4s2
  cmp "$tsan_dir/ts_j1s0/run_00000.timeseries.jsonl" \
      "$tsan_dir/ts_j4s0/run_00000.timeseries.jsonl"
  cmp "$tsan_dir/ts_j1s1/run_00000.timeseries.jsonl" \
      "$tsan_dir/ts_j4s2/run_00000.timeseries.jsonl"
  cmp "$tsan_dir/ts_j1s1/run_00001.timeseries.jsonl" \
      "$tsan_dir/ts_j4s2/run_00001.timeseries.jsonl"
  "$tsan_dir/examples/dcdl_report" --dir "$tsan_dir/ts_j1s1" \
    --out "$tsan_dir/report_a.md"
  "$tsan_dir/examples/dcdl_report" --dir "$tsan_dir/ts_j1s1" \
    --out "$tsan_dir/report_b.md"
  cmp "$tsan_dir/report_a.md" "$tsan_dir/report_b.md"

  # Watch early-warning leg: dcdl::watch samples the wait-for graph and
  # pause state at the same window barriers as the probe, so its
  # `dcdl.alerts.v1` artifact obeys the same two identity classes. The
  # gtest suite (rule-engine edges, lead-time assertions, executor jobs
  # invariance) runs under TSan, then the alert streams from the probe
  # leg's sweeps above must be byte-identical across --jobs within either
  # engine and across shard counts within the sharded engine.
  cmake --build "$tsan_dir" --target test_watch -j"$(nproc)"
  "$tsan_dir/tests/test_watch"
  cmp "$tsan_dir/ts_j1s0/run_00000.alerts.jsonl" \
      "$tsan_dir/ts_j4s0/run_00000.alerts.jsonl"
  cmp "$tsan_dir/ts_j1s1/run_00000.alerts.jsonl" \
      "$tsan_dir/ts_j4s2/run_00000.alerts.jsonl"
  cmp "$tsan_dir/ts_j1s1/run_00001.alerts.jsonl" \
      "$tsan_dir/ts_j4s2/run_00001.alerts.jsonl"

  # The perf gate below also covers the probe layer: routing_loop_probe
  # (the same scenario with a 100 us sampler attached) and
  # routing_loop_watch (sampler + the full early-warning stack: wait-for
  # snapshots, rule engine, risk reassessment) sit in BENCH_perf.json, so
  # observability overhead regressions trip the same >10% events/sec check
  # as any other hot-path change.
  perf_dir="$repo_root/build-perf"
  cmake -B "$perf_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$perf_dir" --target bench_perf -j"$(nproc)"
  "$perf_dir/bench/bench_perf" --baseline "$repo_root/BENCH_perf.json"
fi

if [ "$sanitizers" = 1 ]; then
  "$repo_root/tools/asan.sh"
  "$repo_root/tools/tsan.sh"
fi

echo "ci.sh: all checks passed"
