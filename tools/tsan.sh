#!/usr/bin/env sh
# Builds the concurrency-bearing tests with -fsanitize=thread and runs
# them, proving both multi-threaded engines are race-free under a real data
# race detector:
#
#   - test_campaign: the executor's worker pool (atomic cursor,
#     pre-assigned record slots, locked progress callback); its determinism
#     test runs the same sweep at jobs=1 and jobs=8 and asserts
#     byte-identical artifacts.
#   - test_sharded: the sharded conservative engine — worker threads,
#     window barriers, mailboxes, per-shard trace buffers. Its digest tests
#     run the paper scenarios at 1/2/4/8 shards, so every cross-thread edge
#     of the window protocol executes under TSan. The engine carries no
#     TSan suppressions or annotations: all cross-thread accesses are
#     ordered by the two std::barrier arrive_and_wait calls per device pass
#     (see DESIGN.md "Sharded simulation architecture"), so a clean run is
#     by construction, not by exclusion.
#   - test_dataplane: the in-switch detection/recovery pipeline, whose
#     tagged PFC frames and recovery timers cross shard boundaries; its
#     shard-invariance test runs the valley recovery scenario on the legacy
#     engine and at 1/2/4 shards and asserts identical summaries.
#   - test_hybrid: the hybrid fluid/packet engine — its controller runs on
#     the control simulator while the sharded engine's workers execute
#     device events; the byte-identity test sweeps with the zoom on across
#     jobs=1/shards=1 and jobs=4/shards=2.
#   - test_probe: the dcdl::probe time-series layer — its sampler ticks on
#     the control simulator while shard workers run device events, and its
#     byte-identity test renders the `dcdl.timeseries.v1` artifact at
#     1/2/4 shards. The profiler is thread_local-install-only (workers see
#     a null pointer and never write), so a clean run proves that design.
#   - test_watch: the dcdl::watch early-warning layer — its rule engine
#     steps and wait-for-graph snapshots run at shard-window barriers while
#     worker threads execute device events; the byte-identity test renders
#     the `dcdl.alerts.v1` artifact at 1/2/4 shards, and the executor test
#     compares alert records across jobs=1 and jobs=4.
#   - test_simulator: the single-threaded core under the same build, as a
#     control.
#
#   tools/tsan.sh [build-dir]          # default: build-tsan
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-tsan"}

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"

cmake --build "$build_dir" \
  --target test_campaign test_sharded test_dataplane test_hybrid \
  test_probe test_watch test_simulator -j"$(nproc)"

# gtest binaries run directly (no ctest discovery needed under TSan).
"$build_dir/tests/test_campaign"
"$build_dir/tests/test_sharded"
"$build_dir/tests/test_dataplane"
"$build_dir/tests/test_hybrid"
"$build_dir/tests/test_probe"
"$build_dir/tests/test_watch"
"$build_dir/tests/test_simulator"

echo "tsan.sh: campaign + sharded + dataplane + hybrid + probe + watch + simulator tests clean under ThreadSanitizer"
