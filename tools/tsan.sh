#!/usr/bin/env sh
# Builds the campaign tests with -fsanitize=thread and runs them, proving
# the executor's worker pool (atomic cursor, pre-assigned record slots,
# locked progress callback) is race-free under a real data-race detector.
#
#   tools/tsan.sh [build-dir]          # default: build-tsan
#
# The determinism test inside test_campaign runs the same sweep at jobs=1
# and jobs=8 and asserts byte-identical artifacts, so this one binary
# exercises every cross-thread edge the campaign engine has.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-tsan"}

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"

cmake --build "$build_dir" --target test_campaign test_simulator -j"$(nproc)"

# gtest binaries run directly (no ctest discovery needed under TSan).
"$build_dir/tests/test_campaign"
"$build_dir/tests/test_simulator"

echo "tsan.sh: campaign + simulator tests clean under ThreadSanitizer"
